//! Chaos engineering for a live pipeline: a streaming service loses a
//! node mid-stream, re-maps, and drops nothing.
//!
//! The paper's core claim is that an adaptive pipeline re-maps itself
//! as grid nodes degrade — this example takes the claim to its limit: a
//! scheduled `FaultPlan` first brown-outs one node, then *kills*
//! another while requests keep flowing through a live `RunSession` on
//! the threaded backend:
//!
//! 1. declare the fault schedule on the builder (`.faults(plan)`):
//!    node 2 slows to 30 % for a window; node 1 crashes at t = 0.8 s
//!    and never comes back;
//! 2. push steady traffic and consume outputs concurrently; at the
//!    crash instant the runtime marks the node down, excludes it from
//!    routing, forces a committed re-map away from it, and replays the
//!    items that were stranded on the dead worker (at-least-once
//!    delivery, exactly-once observable output);
//! 3. watch the live `RunEvent` stream — `NodeDown`, the recovery
//!    `Remap`, and each `ItemReplayed` rescue;
//! 4. drain gracefully and emit the machine-readable report, now with
//!    `replays` and per-node `node_downtime_secs`.
//!
//! Run with: `cargo run --release --example chaos_service`

use adapipe::prelude::*;
use std::time::{Duration, Instant};

/// Per-item work each stage spins for: ~3 ms.
const STAGE: Duration = Duration::from_millis(3);
const REQUESTS: u64 = 240;

fn main() {
    // The chaos schedule, declared up front like any other experiment
    // input: a brown-out on node 2, then a fatal crash of node 1.
    let plan = FaultPlan::new()
        .slowdown(
            NodeId(2),
            SimTime::from_secs_f64(0.2),
            SimTime::from_secs_f64(0.6),
            0.3,
        )
        .crash(NodeId(1), SimTime::from_secs_f64(0.8));

    let pipeline = Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("decode", 0.003, 256), |req: u64| {
            spin_for(STAGE);
            req + 1
        })
        .stage_with(StageSpec::balanced("transform", 0.003, 256), |x: u64| {
            spin_for(STAGE);
            x * 2
        })
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(200),
        })
        .faults(plan)
        .build()
        .expect("a valid pipeline");

    let vnodes: Vec<VNodeSpec> = (0..3).map(|i| VNodeSpec::free(format!("v{i}"))).collect();
    let mut session = pipeline
        .spawn(
            Backend::Threads(vnodes),
            RunConfig {
                items: REQUESTS, // amortisation hint
                // Stage "transform" starts on the doomed node.
                initial_mapping: Some(Mapping::from_assignment(&[NodeId(0), NodeId(1)])),
                queue_capacity: Some(32),
                ..RunConfig::default()
            },
        )
        .expect("a compatible backend");
    let events = session.events();

    println!("== chaos service: brown-out at 0.2s, node crash at 0.8s ==\n");

    // Steady ~150 req/s while the chaos plan unfolds underneath.
    let epoch = Instant::now();
    let mut outputs: Vec<u64> = Vec::new();
    for req in 0..REQUESTS {
        let target = req as f64 / 150.0;
        let now = epoch.elapsed().as_secs_f64();
        if target > now {
            std::thread::sleep(Duration::from_secs_f64(target - now));
        }
        session.push(req).unwrap();
        while let TryNext::Item(o) = session.try_next() {
            outputs.push(o);
        }
    }

    // Graceful drain: every pushed request completes despite the crash.
    let handle = session.drain();
    outputs.extend(handle.outputs);
    let report = handle.report;

    let mut downs = 0u32;
    let mut replays = 0u32;
    let mut recovery_remaps = 0u32;
    for ev in events.try_iter() {
        match ev {
            RunEvent::NodeDown { node, at, .. } => {
                downs += 1;
                println!("NODE DOWN: v{node} at t={:.2}s", at.as_secs_f64());
            }
            RunEvent::ItemReplayed {
                seq, stage, from, ..
            } => {
                replays += 1;
                if replays <= 3 {
                    println!("replayed item #{seq} (stage {stage}) off dead v{from}");
                }
            }
            RunEvent::Remap { plan, .. } if !plan.to.nodes_used().contains(&NodeId(1)) => {
                recovery_remaps += 1;
                println!(
                    "recovery remap at t={:.2}s: {} -> {}",
                    plan.at.as_secs_f64(),
                    plan.from,
                    plan.to
                );
            }
            _ => {}
        }
    }

    println!(
        "\nserved {} / {REQUESTS} | {downs} node-down event(s) | {replays} replay(s) | \
         downtime v1 = {:.2}s",
        report.completed,
        report.node_downtime.get(1).map_or(0.0, |d| d.as_secs_f64()),
    );
    println!(
        "final mapping {} (crashed node evacuated: {})",
        report.final_mapping,
        !report.final_mapping.nodes_used().contains(&NodeId(1)),
    );

    // The chaos contract: the node really died, the pipeline really
    // re-mapped, and not one request was lost or duplicated.
    assert_eq!(handle.error, None, "run failed: {:?}", handle.error);
    assert_eq!(report.completed, REQUESTS, "a request was dropped");
    assert!(!report.truncated);
    assert_eq!(downs, 1, "the crash must surface as NodeDown");
    assert!(recovery_remaps >= 1, "the crash must force a re-map");
    assert!(
        !report.final_mapping.nodes_used().contains(&NodeId(1)),
        "the dead node must be evacuated"
    );
    let expect: Vec<u64> = (0..REQUESTS).map(|x| (x + 1) * 2).collect();
    assert_eq!(outputs, expect, "outputs must be exactly-once, in order");

    println!("\nmachine-readable report:\n{}", report.to_json());
}
