//! Small statistics toolbox: streaming moments, quantiles, error metrics.
//!
//! Kept dependency-free; everything here is exact arithmetic over `f64`.

/// Streaming mean/variance via Welford's algorithm.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or `None` before any sample.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Unbiased sample variance, or `None` with fewer than two samples.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation, or `None` with fewer than two samples.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Adds `k` samples all equal to `x` in O(1) — the merge of a
    /// zero-variance batch. Count, sum and mean stay exact; only the
    /// within-batch spread is collapsed, so callers that absorb whole
    /// windows of identically-attributed measurements (batched
    /// engines) keep exact first moments at O(batches) cost.
    pub fn push_n(&mut self, x: f64, k: u64) {
        if k == 0 {
            return;
        }
        self.merge(&Welford {
            n: k,
            mean: x,
            m2: 0.0,
        });
    }

    /// Merges another accumulator into this one — the exact parallel
    /// combination (Chan et al.), so per-worker accumulators fold into
    /// the same moments a single stream would have produced.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.mean += delta * other.n as f64 / n;
        self.n += other.n;
    }
}

/// Linear-interpolated quantile of a **sorted** slice, `q ∈ [0, 1]`.
///
/// # Panics
/// Panics if the slice is empty or `q` is out of range.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median of an unsorted slice (copies and sorts internally).
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    Some(quantile_sorted(&v, 0.5))
}

/// Accumulates forecast errors and reports MAE / RMSE / mean error (bias).
#[derive(Clone, Debug, Default)]
pub struct ErrorStats {
    n: u64,
    abs_sum: f64,
    sq_sum: f64,
    signed_sum: f64,
}

impl ErrorStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(predicted, actual)` pair.
    pub fn record(&mut self, predicted: f64, actual: f64) {
        let e = predicted - actual;
        self.n += 1;
        self.abs_sum += e.abs();
        self.sq_sum += e * e;
        self.signed_sum += e;
    }

    /// Number of pairs recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean absolute error, or `None` before any pair.
    pub fn mae(&self) -> Option<f64> {
        (self.n > 0).then(|| self.abs_sum / self.n as f64)
    }

    /// Root mean squared error, or `None` before any pair.
    pub fn rmse(&self) -> Option<f64> {
        (self.n > 0).then(|| (self.sq_sum / self.n as f64).sqrt())
    }

    /// Mean signed error (positive = over-prediction), or `None` if empty.
    pub fn bias(&self) -> Option<f64> {
        (self.n > 0).then(|| self.signed_sum / self.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((w.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn push_n_matches_repeated_push() {
        let mut batched = Welford::new();
        let mut streamed = Welford::new();
        batched.push(1.0);
        streamed.push(1.0);
        batched.push_n(4.0, 5);
        for _ in 0..5 {
            streamed.push(4.0);
        }
        assert_eq!(batched.count(), streamed.count());
        assert!((batched.mean().unwrap() - streamed.mean().unwrap()).abs() < 1e-12);
        assert!((batched.variance().unwrap() - streamed.variance().unwrap()).abs() < 1e-12);
        // k = 0 is a no-op.
        batched.push_n(100.0, 0);
        assert_eq!(batched.count(), 6);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance(), None);
        w.push(3.0);
        assert_eq!(w.mean(), Some(3.0));
        assert_eq!(w.variance(), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 4.0);
        assert!((quantile_sorted(&v, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile_sorted(&v, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[5.0]), Some(5.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn error_stats_compute_mae_rmse_bias() {
        let mut e = ErrorStats::new();
        e.record(1.0, 2.0); // error -1
        e.record(4.0, 2.0); // error +2
        assert_eq!(e.count(), 2);
        assert!((e.mae().unwrap() - 1.5).abs() < 1e-12);
        assert!((e.rmse().unwrap() - (2.5f64).sqrt()).abs() < 1e-12);
        assert!((e.bias().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn error_stats_empty() {
        let e = ErrorStats::new();
        assert_eq!(e.mae(), None);
        assert_eq!(e.rmse(), None);
        assert_eq!(e.bias(), None);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile_sorted(&[], 0.5);
    }
}
