//! Cross-engine parity: the same spec + policy + seed must behave the
//! same on both execution backends, because both now run the *same*
//! adaptive runtime (`adapipe-runtime`'s routing table and adaptation
//! loop). These tests drive one scenario — a node collapsing shortly
//! after launch — through the discrete-event simulation backend and the
//! threaded vnode backend and compare the outcomes, plus
//! adaptation-behaviour checks on the threaded backend alone.

use adapipe::prelude::*;
use std::time::Duration;

fn n(i: usize) -> NodeId {
    NodeId(i)
}

/// Per-item work each stage performs, as wall/sim seconds.
const STAGE_SECS: f64 = 0.004;
const ITEMS: u64 = 150;
/// Node 1 collapses to 5 % availability at t = 0.3 s.
fn collapse() -> LoadModel {
    LoadModel::step(1.0, 0.05, SimTime::from_secs_f64(0.3))
}

fn stage_spec(name: &str) -> StageSpec {
    StageSpec::balanced(name, STAGE_SECS, 8)
}

/// The scenario on the simulation backend.
fn run_sim(policy: Policy, noise_seed: u64) -> RunReport {
    let nodes = (0..3)
        .map(|i| {
            let load = if i == 1 {
                collapse()
            } else {
                LoadModel::free()
            };
            Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), load)
        })
        .collect();
    let grid = GridSpec::new(nodes, Topology::uniform(3, LinkSpec::local()));
    let spec = PipelineSpec::new(vec![stage_spec("a"), stage_spec("b")]);
    let cfg = SimConfig {
        items: ITEMS,
        policy,
        initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1)])),
        observation_noise: 0.05,
        noise_seed,
        timeline_bucket: SimDuration::from_millis(500),
        ..SimConfig::default()
    };
    sim_run(&grid, &spec, &cfg)
}

/// The same scenario on the threaded backend.
fn run_threaded(policy: Policy, noise_seed: u64) -> EngineOutcome<u64> {
    let pipeline = PipelineBuilder::<u64>::new()
        .stage(stage_spec("a"), |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x + 1
        })
        .stage(stage_spec("b"), |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x + 1
        })
        .build();
    let vnodes = vec![
        VNodeSpec::free("v0"),
        VNodeSpec::free("v1").with_load(collapse()),
        VNodeSpec::free("v2"),
    ];
    let mut cfg = EngineConfig::new(vnodes);
    cfg.initial_mapping = Some(Mapping::from_assignment(&[n(0), n(1)]));
    cfg.policy = policy;
    cfg.observation_noise = 0.05;
    cfg.noise_seed = noise_seed;
    run_pipeline(pipeline, (0..ITEMS).collect(), &cfg)
}

/// Asserts the two backends agree on the observable adaptive behaviour.
fn assert_parity(policy: Policy) {
    let sim = run_sim(policy, 7);
    let threaded = run_threaded(policy, 7);

    // Same completed-item counts on both backends.
    assert_eq!(sim.completed, ITEMS, "sim backend lost items");
    assert_eq!(
        threaded.report.completed, ITEMS,
        "threaded backend lost items"
    );
    assert_eq!(sim.completed, threaded.report.completed);

    // Both adapt away from the collapsed node (non-empty event logs with
    // identical structure: the shared runtime assembled both reports).
    assert!(
        sim.adaptation_count() >= 1,
        "sim backend never adapted under {policy:?}"
    );
    assert!(
        threaded.report.adaptation_count() >= 1,
        "threaded backend never adapted under {policy:?}"
    );
    for report in [&sim, &threaded.report] {
        assert!(report.planning_cycles >= 1);
        for event in &report.adaptations {
            assert!(!event.migrated_stages.is_empty());
            assert!(event.predicted_speedup > 1.0);
        }
    }

    // Exactly-once processing on the threaded side (x + 2 per item).
    let expect: Vec<u64> = (0..ITEMS).map(|x| x + 2).collect();
    assert_eq!(threaded.outputs, expect);
}

#[test]
fn parity_under_periodic_policy() {
    assert_parity(Policy::Periodic {
        interval: SimDuration::from_millis(200),
    });
}

#[test]
fn parity_under_reactive_policy() {
    assert_parity(Policy::Reactive {
        interval: SimDuration::from_millis(200),
        degradation: 0.6,
    });
}

// --- adaptation behaviour on the threaded backend alone ---------------
// (Moved here from the engine's unit tests: they exercise the shared
// runtime's policies, which now live above the engine.)

fn spin_stage(name: &str, ms: u64) -> (StageSpec, impl FnMut(u64) -> u64 + Send + Clone) {
    (
        StageSpec::balanced(name, ms as f64 / 1000.0, 8),
        move |x: u64| {
            spin_for(Duration::from_millis(ms));
            x + 1
        },
    )
}

fn free_nodes(k: usize) -> Vec<VNodeSpec> {
    (0..k).map(|i| VNodeSpec::free(format!("v{i}"))).collect()
}

#[test]
fn adaptive_engine_remaps_away_from_loaded_node() {
    // Node 1 collapses to 5 % availability 300 ms into the run; the
    // periodic controller must move its stage elsewhere.
    let (s0, f0) = spin_stage("a", 4);
    let (s1, f1) = spin_stage("b", 4);
    let pipeline = PipelineBuilder::<u64>::new()
        .stage(s0, f0)
        .stage(s1, f1)
        .build();
    let vnodes = vec![
        VNodeSpec::free("v0"),
        VNodeSpec::free("v1").with_load(collapse()),
        VNodeSpec::free("v2"),
    ];
    let mut cfg = EngineConfig::new(vnodes);
    cfg.initial_mapping = Some(Mapping::from_assignment(&[n(0), n(1)]));
    cfg.policy = Policy::Periodic {
        interval: SimDuration::from_millis(200),
    };
    let outcome = run_pipeline(pipeline, (0..150).collect(), &cfg);
    assert_eq!(outcome.report.completed, 150);
    assert!(
        outcome.report.adaptation_count() >= 1,
        "controller must re-map at least once"
    );
    // Final mapping avoids the loaded node.
    let final_hosts = outcome.report.final_mapping.nodes_used();
    assert!(
        !final_hosts.contains(&n(1)),
        "stage still on loaded node: {}",
        outcome.report.final_mapping
    );
    // And every item still processed exactly once, in order.
    let expect: Vec<u64> = (0..150).map(|x| x + 2).collect();
    assert_eq!(outcome.outputs, expect);
}

#[test]
fn reactive_policy_recovers_on_engine() {
    // Same scenario as the periodic test, but the reactive policy only
    // plans when observed throughput degrades.
    let (s0, f0) = spin_stage("a", 4);
    let (s1, f1) = spin_stage("b", 4);
    let pipeline = PipelineBuilder::<u64>::new()
        .stage(s0, f0)
        .stage(s1, f1)
        .build();
    let vnodes = vec![
        VNodeSpec::free("v0"),
        VNodeSpec::free("v1").with_load(collapse()),
        VNodeSpec::free("v2"),
    ];
    let mut cfg = EngineConfig::new(vnodes);
    cfg.initial_mapping = Some(Mapping::from_assignment(&[n(0), n(1)]));
    cfg.policy = Policy::Reactive {
        interval: SimDuration::from_millis(200),
        degradation: 0.6,
    };
    let outcome = run_pipeline(pipeline, (0..200).collect(), &cfg);
    assert_eq!(outcome.report.completed, 200);
    assert!(
        outcome.report.adaptation_count() >= 1,
        "reactive controller must react to the collapse"
    );
    let expect: Vec<u64> = (0..200).map(|x| x + 2).collect();
    assert_eq!(outcome.outputs, expect);
}

#[test]
fn oracle_policy_runs_on_engine() {
    let (s0, f0) = spin_stage("a", 3);
    let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
    let vnodes = vec![
        VNodeSpec::free("v0").with_load(LoadModel::step(1.0, 0.05, SimTime::from_secs_f64(0.2))),
        VNodeSpec::free("v1"),
    ];
    let mut cfg = EngineConfig::new(vnodes);
    cfg.initial_mapping = Some(Mapping::all_on(n(0), 1));
    cfg.policy = Policy::Oracle {
        interval: SimDuration::from_millis(150),
    };
    let outcome = run_pipeline(pipeline, (0..150).collect(), &cfg);
    assert_eq!(outcome.report.completed, 150);
    assert!(outcome.report.adaptation_count() >= 1);
    assert!(!outcome.report.final_mapping.placement(0).contains(n(0)));
}

#[test]
fn observation_noise_on_engine_is_tolerated() {
    let (s0, f0) = spin_stage("a", 2);
    let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
    let mut cfg = EngineConfig::new(free_nodes(2));
    cfg.policy = Policy::Periodic {
        interval: SimDuration::from_millis(150),
    };
    cfg.observation_noise = 0.10;
    let outcome = run_pipeline(pipeline, (0..100).collect(), &cfg);
    assert_eq!(outcome.report.completed, 100);
    let expect: Vec<u64> = (0..100).map(|x| x + 1).collect();
    assert_eq!(outcome.outputs, expect);
}

#[test]
fn planning_cycles_are_reported() {
    let (s0, f0) = spin_stage("a", 2);
    let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
    let mut cfg = EngineConfig::new(free_nodes(2));
    cfg.policy = Policy::Periodic {
        interval: SimDuration::from_millis(100),
    };
    // Pace the input so the run outlives the 2-tick warm-up by a
    // comfortable margin.
    cfg.pacing_rate = Some(200.0); // 150 items → ≥ 750 ms
    let outcome = run_pipeline(pipeline, (0..150).collect(), &cfg);
    assert!(outcome.report.planning_cycles >= 1);
}
