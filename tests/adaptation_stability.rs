//! Integration tests for adaptation *stability* — the guarantees that
//! keep the pattern safe to leave enabled on hostile grids.
//!
//! These encode the failure modes found while building ablation A2:
//! forecast aliasing against oscillating load, cold-start
//! over-extrapolation, and re-mapping churn.

use adapipe::core::simengine::run as sim_run;
use adapipe::prelude::*;

/// Two of four nodes oscillate 1.0 ↔ 0.1 with a period near the
/// adaptation interval — the adversarial regime.
fn wave_grid(period_s: u64) -> GridSpec {
    let period = SimDuration::from_secs(period_s);
    let nodes = (0..4)
        .map(|i| {
            let load = match i {
                1 => LoadModel::square_wave(1.0, 0.1, period, 0.5, SimDuration::ZERO),
                3 => LoadModel::square_wave(1.0, 0.1, period, 0.5, period.mul_f64(0.5)),
                _ => LoadModel::free(),
            };
            Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), load)
        })
        .collect();
    GridSpec::new(nodes, Topology::uniform(4, LinkSpec::lan()))
}

fn spread4() -> Mapping {
    Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
}

/// In the adversarial oscillation regime the adaptive run must stay
/// within a small factor of static — hysteresis + warm-up + confirmation
/// bound the churn.
#[test]
fn oscillating_load_never_causes_large_loss() {
    for period_s in [4u64, 10, 20] {
        let grid = wave_grid(period_s);
        let spec = PipelineSpec::balanced(4, 1.0, 10_000);
        let mk = |policy| SimConfig {
            items: 400,
            policy,
            initial_mapping: Some(spread4()),
            ..SimConfig::default()
        };
        let static_r = sim_run(&grid, &spec, &mk(Policy::Static));
        let adaptive_r = sim_run(
            &grid,
            &spec,
            &mk(Policy::Periodic {
                interval: SimDuration::from_secs(5),
            }),
        );
        assert_eq!(adaptive_r.completed, 400);
        let ratio = adaptive_r.makespan.as_secs_f64() / static_r.makespan.as_secs_f64();
        assert!(
            ratio < 1.10,
            "period {period_s}s: adaptive lost {:.0}% to static",
            (ratio - 1.0) * 100.0
        );
    }
}

/// The confirmed controller re-maps at most a handful of times under
/// oscillation, while a fully naive controller (no hysteresis, no
/// confirmation, instant trust) re-maps more.
#[test]
fn confirmation_limits_churn() {
    let grid = wave_grid(10);
    let spec = PipelineSpec::balanced(4, 1.0, 10_000);
    let mut confirmed_cfg = SimConfig {
        items: 400,
        policy: Policy::Periodic {
            interval: SimDuration::from_secs(5),
        },
        initial_mapping: Some(spread4()),
        ..SimConfig::default()
    };
    confirmed_cfg.controller.warmup_ticks = 2;
    confirmed_cfg.controller.confirm_ticks = 2;

    let mut naive_cfg = confirmed_cfg.clone();
    naive_cfg.controller.warmup_ticks = 0;
    naive_cfg.controller.confirm_ticks = 1;
    naive_cfg.controller.decision = adapipe::mapper::decide::DecisionConfig {
        min_relative_gain: 0.0,
        cost_benefit_factor: 0.0,
    };

    let confirmed = sim_run(&grid, &spec, &confirmed_cfg);
    let naive = sim_run(&grid, &spec, &naive_cfg);
    assert!(
        confirmed.adaptation_count() <= naive.adaptation_count(),
        "confirmation must not re-map more than naive ({} vs {})",
        confirmed.adaptation_count(),
        naive.adaptation_count()
    );
    // With the regret guard active the confirmed controller may probe a
    // few configurations (each revert re-arms planning after the hold),
    // but stays an order of magnitude below the naive controller's churn.
    assert!(
        confirmed.adaptation_count() <= 12,
        "confirmed controller churned: {} re-mappings",
        confirmed.adaptation_count()
    );
}

/// Warm-up suppresses cold-start decisions: with a long warm-up nothing
/// can happen before `warmup_ticks × interval`.
#[test]
fn warmup_delays_first_adaptation() {
    let mut grid = testbed_small3();
    FaultPlan::new()
        .slowdown(
            NodeId(1),
            SimTime::from_secs_f64(1.0),
            SimTime::from_secs_f64(1e6),
            0.05,
        )
        .apply(&mut grid);
    let spec = PipelineSpec::balanced(3, 1.0, 0);
    let mut cfg = SimConfig {
        items: 300,
        policy: Policy::Periodic {
            interval: SimDuration::from_secs(5),
        },
        initial_mapping: Some(Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2)])),
        ..SimConfig::default()
    };
    cfg.controller.warmup_ticks = 4;
    cfg.controller.confirm_ticks = 2;
    let report = sim_run(&grid, &spec, &cfg);
    assert!(
        report.adaptation_count() >= 1,
        "fault must eventually be handled"
    );
    // Ticks at 5,10,15,20 are warm-up; the first possible verdict is at
    // t=25 and confirmation delays action to t=30.
    assert!(
        report.adaptations[0].at >= SimTime::from_secs_f64(30.0),
        "first adaptation at {} despite warmup",
        report.adaptations[0].at
    );
}

/// Planning-cycle accounting: reactive plans strictly less often than
/// periodic on a calm grid (it only plans when throughput degrades).
#[test]
fn reactive_plans_less_than_periodic() {
    let grid = testbed_small3();
    let spec = PipelineSpec::balanced(3, 1.0, 0);
    let interval = SimDuration::from_secs(5);
    let mk = |policy| SimConfig {
        items: 400,
        policy,
        initial_mapping: Some(Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2)])),
        ..SimConfig::default()
    };
    let periodic = sim_run(&grid, &spec, &mk(Policy::Periodic { interval }));
    let reactive = sim_run(
        &grid,
        &spec,
        &mk(Policy::Reactive {
            interval,
            degradation: 0.7,
        }),
    );
    assert!(periodic.planning_cycles > 0);
    assert_eq!(
        reactive.planning_cycles, 0,
        "calm grid: reactive must never trigger planning"
    );
    assert_eq!(reactive.adaptation_count(), 0);
}

/// Observation noise at realistic magnitudes must not destabilise the
/// controller on a calm grid.
#[test]
fn noise_alone_never_triggers_remapping() {
    let grid = testbed_small3();
    let spec = PipelineSpec::balanced(3, 1.0, 0);
    for seed in [1u64, 2, 3] {
        let cfg = SimConfig {
            items: 300,
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            initial_mapping: Some(Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2)])),
            observation_noise: 0.10,
            noise_seed: seed,
            ..SimConfig::default()
        };
        let report = sim_run(&grid, &spec, &cfg);
        assert_eq!(
            report.adaptation_count(),
            0,
            "seed {seed}: ±10% sensor noise caused a re-mapping"
        );
    }
}

/// Observation noise at realistic magnitudes must not prevent the
/// controller from reacting to a genuine collapse either.
#[test]
fn observation_noise_does_not_break_adaptation() {
    let mut grid = testbed_small3();
    FaultPlan::new()
        .slowdown(
            NodeId(1),
            SimTime::from_secs_f64(40.0),
            SimTime::from_secs_f64(100_000.0),
            0.05,
        )
        .apply(&mut grid);
    let spec = PipelineSpec::balanced(3, 1.0, 0);
    let cfg = SimConfig {
        items: 400,
        initial_mapping: Some(Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2)])),
        policy: Policy::Periodic {
            interval: SimDuration::from_secs(5),
        },
        observation_noise: 0.10,
        ..SimConfig::default()
    };
    let report = sim_run(&grid, &spec, &cfg);
    assert_eq!(report.completed, 400);
    assert!(report.adaptation_count() >= 1);
}

/// A load pattern the NWS family mispredicts: square wave phase-locked
/// to the adaptation interval. Force a remap-prone controller (no
/// hysteresis) and verify the regret guard steps in: the run must end
/// within a modest factor of static.
#[test]
fn regret_guard_reverts_underperforming_remap() {
    let grid = wave_grid(10);
    let spec = PipelineSpec::balanced(4, 1.0, 0);
    let mapping = spread4();

    let mut with_guard = SimConfig {
        items: 400,
        policy: Policy::Periodic {
            interval: SimDuration::from_secs(5),
        },
        initial_mapping: Some(mapping.clone()),
        ..SimConfig::default()
    };
    with_guard.controller.decision = adapipe::mapper::decide::DecisionConfig {
        min_relative_gain: 0.0,
        cost_benefit_factor: 0.0,
    };

    let mut without_guard = with_guard.clone();
    without_guard.controller.guard_bad_ticks = 0; // disable

    let static_cfg = SimConfig {
        items: 400,
        initial_mapping: Some(mapping),
        ..SimConfig::default()
    };

    let guarded = sim_run(&grid, &spec, &with_guard);
    let unguarded = sim_run(&grid, &spec, &without_guard);
    let static_r = sim_run(&grid, &spec, &static_cfg);
    assert_eq!(guarded.completed, 400);
    assert_eq!(unguarded.completed, 400);
    // The guard must not make things worse than the unguarded
    // controller, and must keep the loss vs static bounded.
    assert!(
        guarded.makespan.as_secs_f64() <= unguarded.makespan.as_secs_f64() * 1.05,
        "guard hurt: {} vs {}",
        guarded.makespan,
        unguarded.makespan
    );
    assert!(
        guarded.makespan.as_secs_f64() <= static_r.makespan.as_secs_f64() * 1.30,
        "guarded adaptive lost too much to static: {} vs {}",
        guarded.makespan,
        static_r.makespan
    );
}
