//! # adapipe-mapper
//!
//! Planning for the adaptive parallel pipeline pattern: given a forecast
//! of per-node effective rates and the link cost matrix, find the
//! stage-to-processor mapping with the best predicted throughput, and
//! decide whether switching to it is worth the migration cost.
//!
//! * [`mapping`] — the mapping representation: per-stage host sets with
//!   coalescing (consecutive stages sharing a host) and replication
//!   (stateless stages fanned over several hosts);
//! * [`graph`] — series-parallel stage graphs: the pipeline *shape*
//!   (chains plus fan-out/fan-in parallel blocks) over flattened stage
//!   ids, with the linear chain as the degenerate case;
//! * [`model`] — the analytic bottleneck model: busy-seconds-per-item on
//!   every processor and link (accumulated over the stage graph's
//!   edges); throughput = 1 / busiest resource, latency follows the
//!   slowest parallel path;
//! * [`enumerate`] — assignment enumeration, compositions, neighbourhood
//!   moves;
//! * [`search`] — exhaustive search (small instances), contiguous dynamic
//!   programming, steepest-descent local search with restarts, and the
//!   [`search::plan`] facade;
//! * [`replicate`] — greedy widening of stateless bottleneck stages;
//! * [`decide`] — hysteresis + cost/benefit re-mapping rule;
//! * [`share`] — cross-tenant capacity arbitration: weighted
//!   progressive filling of one pool over many sessions under
//!   `min_share`/`max_share` quotas.
//!
//! ## Example
//!
//! ```
//! use adapipe_mapper::prelude::*;
//! use adapipe_gridsim::prelude::*;
//!
//! // 3-stage pipeline, uniform work, negligible data; 3 equal nodes.
//! let profile = PipelineProfile::uniform(vec![1.0, 1.0, 1.0], 0);
//! let topology = Topology::uniform(3, LinkSpec::lan());
//! let plan = plan(&profile, &[1.0, 1.0, 1.0], &topology, &PlannerConfig::default());
//! // The planner spreads the stages: one per node.
//! assert_eq!(plan.mapping.nodes_used().len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod decide;
pub mod enumerate;
pub mod graph;
pub mod mapping;
pub mod model;
pub mod replicate;
pub mod search;
pub mod share;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::decide::{should_remap, Decision, DecisionConfig, KeepReason};
    pub use crate::enumerate::{
        assignment_count, compositions, neighbours, neighbours_touching, Assignments, Move,
    };
    pub use crate::graph::{Feed, Next, Segment, StageGraph, StageGraphBuilder};
    pub use crate::mapping::{ContiguousMapping, Mapping, Placement};
    pub use crate::model::{evaluate, Bottleneck, PipelineProfile, Prediction};
    pub use crate::replicate::improve;
    pub use crate::search::{
        contiguous_dp, exhaustive_best, exhaustive_frontier, local_search, plan, Plan,
        PlannerConfig, Strategy,
    };
    pub use crate::share::{arbitrate, fair_shares, ShareQuota};
}

pub use prelude::*;
