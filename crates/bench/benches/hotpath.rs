//! Threaded data-plane throughput ceiling: trivial stages over batched
//! envelopes (`batch_size = 256`), lock-free epoch-snapshot routing,
//! the work-stealing replica pool, pooled envelope buffers, and the
//! stride-sampled clock fast path, at 100k and 1M items. Where the
//! `streaming` bench bounds the *session surface* tax at per-item
//! batch sizes, this one measures the wire itself — items/s with
//! plumbing amortised across whole envelopes. The `_fused` leg pins
//! both stages to one vnode so the fusion plan collapses the boundary
//! into a direct call chain.
//!
//! CI gates on absolute floors derived from this file (see
//! `.github/workflows/ci.yml`): ≥ 4M items/s at 1M items, and ≥ 2× the
//! per-item `threads_session_push` rate from the streaming baseline.
//!
//! `cargo bench -p adapipe-bench --bench hotpath`
//!
//! Regenerate the committed baseline with:
//! `ADAPIPE_BENCH_JSON=$PWD/BENCH_hotpath.json \
//!     cargo bench -p adapipe-bench --bench hotpath`

use adapipe::api::{Backend, Pipeline, RunConfig};
use adapipe_engine::vnode::VNodeSpec;
use adapipe_gridsim::node::NodeId;
use adapipe_mapper::mapping::Mapping;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Same trivial 2-stage shape as the streaming bench: all plumbing, no
/// work, so the numbers are the data plane's own ceiling.
fn pipeline() -> Pipeline<u64, u64> {
    Pipeline::<u64>::builder()
        .stage("inc", |x: u64| x + 1)
        .stage("double", |x: u64| x * 2)
        .feed(|i| i)
        .build()
        .expect("valid pipeline")
}

fn vnodes() -> Vec<VNodeSpec> {
    vec![VNodeSpec::free("v0"), VNodeSpec::free("v1")]
}

fn cfg(items: u64) -> RunConfig {
    RunConfig {
        items,
        batch_size: 256,
        ..RunConfig::default()
    }
}

fn bench_hotpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for items in [100_000u64, 1_000_000] {
        // Batched run(): AllAtOnce arrivals feed the whole stream
        // through `push_batch`, the fastest path end to end.
        group.bench_with_input(
            BenchmarkId::new("threads_batch_run", items),
            &items,
            |b, &items| {
                b.iter(|| {
                    pipeline()
                        .run(Backend::Threads(vnodes()), cfg(items))
                        .expect("batch run")
                })
            },
        );
        // Live session driven through `push_batch` in envelope-sized
        // chunks — the streaming producer's fast path.
        group.bench_with_input(
            BenchmarkId::new("threads_session_push_batch", items),
            &items,
            |b, &items| {
                b.iter(|| {
                    let mut session = pipeline()
                        .spawn(Backend::Threads(vnodes()), cfg(items))
                        .expect("spawn");
                    let mut next = 0u64;
                    while next < items {
                        let hi = (next + 4096).min(items);
                        session.push_batch(next..hi).unwrap();
                        next = hi;
                    }
                    session.drain()
                })
            },
        );
        // Both stages pinned to one vnode: the fusion plan collapses
        // the boundary into a direct call, so this leg measures the
        // fused wire — no inter-stage envelope, no inbox hop.
        group.bench_with_input(
            BenchmarkId::new("threads_batch_run_fused", items),
            &items,
            |b, &items| {
                b.iter(|| {
                    let cfg = RunConfig {
                        initial_mapping: Some(Mapping::all_on(NodeId(0), 2)),
                        ..cfg(items)
                    };
                    pipeline()
                        .run(Backend::Threads(vec![VNodeSpec::free("v0")]), cfg)
                        .expect("fused batch run")
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_hotpath);
criterion_main!(benches);
