//! Simulated time: integer-nanosecond timestamps and durations.
//!
//! The simulator keeps time as unsigned integer nanoseconds so that event
//! ordering is exact and runs are bit-for-bit reproducible. Floating-point
//! seconds are used only at the edges (rates, availabilities, reporting);
//! conversions round to the nearest nanosecond.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime seconds must be finite and non-negative, got {secs}"
        );
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// The instant as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition that saturates at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Builds a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// The duration as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative factor, saturating.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(scaled.round() as u64)
        }
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulation ran past u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow: rhs is later than lhs"),
        )
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trips_within_a_nanosecond() {
        for &s in &[0.0, 0.001, 1.0, 3.25, 1e4] {
            let t = SimTime::from_secs_f64(s);
            assert!((t.as_secs_f64() - s).abs() < 1e-9, "round trip {s}");
        }
    }

    #[test]
    fn arithmetic_is_exact_in_nanos() {
        let t = SimTime::from_nanos(5);
        let d = SimDuration::from_nanos(7);
        assert_eq!((t + d).as_nanos(), 12);
        assert_eq!(((t + d) - t).as_nanos(), 7);
    }

    #[test]
    fn ordering_follows_nanos() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs_f64(1.0)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(1));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.5)), "1.500000");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250000");
    }
}
