//! Property-style tests for the planner's model and optimisers.
//!
//! The workspace builds offline, so instead of a property-testing
//! framework these sweep each property over a deterministic fan of
//! seeded instances. Failures print the offending case, which
//! reproduces exactly.

use adapipe_gridsim::net::{LinkSpec, Topology};
use adapipe_gridsim::node::NodeId;
use adapipe_gridsim::rng::Rng64;
use adapipe_gridsim::time::SimDuration;
use adapipe_mapper::prelude::*;

fn fast_net(np: usize) -> Topology {
    Topology::uniform(np, LinkSpec::new(SimDuration::from_nanos(1), 1e12))
}

/// A seeded (stage work, node rates, assignment) instance.
fn instance(rng: &mut Rng64) -> (Vec<f64>, Vec<f64>, Vec<usize>) {
    let ns = 1 + rng.next_range(5);
    let np = 1 + rng.next_range(5);
    let work = (0..ns).map(|_| 0.1 + 9.9 * rng.next_unit()).collect();
    let rates = (0..np).map(|_| 0.1 + 3.9 * rng.next_unit()).collect();
    let assignment = (0..ns).map(|_| rng.next_range(np)).collect();
    (work, rates, assignment)
}

fn to_mapping(assignment: &[usize]) -> Mapping {
    Mapping::from_assignment(&assignment.iter().map(|&i| NodeId(i)).collect::<Vec<_>>())
}

const CASES: u64 = 48;

/// Raising any node's rate never lowers predicted throughput.
#[test]
fn model_is_monotone_in_rates() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x3A7E + case);
        let (work, mut rates, assignment) = instance(&mut rng);
        let boost = 1.01 + 2.99 * rng.next_unit();
        let profile = PipelineProfile::uniform(work, 0);
        let mapping = to_mapping(&assignment);
        let topo = fast_net(rates.len());
        let before = evaluate(&profile, &mapping, &rates, &topo);
        let idx = rng.next_range(rates.len());
        rates[idx] *= boost;
        let after = evaluate(&profile, &mapping, &rates, &topo);
        assert!(
            after.throughput >= before.throughput - 1e-12,
            "case {case}: boosting node {idx} lowered throughput: {} -> {}",
            before.throughput,
            after.throughput
        );
    }
}

/// With free communication and *equal-rate* nodes, replicating a stage
/// onto an unused node never lowers predicted throughput.
///
/// (The equal-rate restriction is essential: items are dealt
/// round-robin, so a much slower replica receives an equal share it
/// cannot sustain and becomes the new bottleneck — a real property of
/// the pattern that the greedy replication pass must, and does, account
/// for via the model.)
#[test]
fn replication_never_hurts_on_equal_nodes() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x4E61 + case);
        let (work, rates, assignment) = instance(&mut rng);
        let rate = 0.1 + 3.9 * rng.next_unit();
        let np = rates.len() + 1; // ensure at least one unused node exists
        let rates = vec![rate; np];
        let profile = PipelineProfile::uniform(work, 0);
        let base = to_mapping(&assignment);
        let topo = fast_net(np);
        let before = evaluate(&profile, &base, &rates, &topo);
        let stage = rng.next_range(base.len());
        // A node hosting nothing at all.
        let used = base.nodes_used();
        let Some(candidate) = (0..np).map(NodeId).find(|n| !used.contains(n)) else {
            continue;
        };
        let mut widened = base.clone();
        widened.placement_mut(stage).add_host(candidate);
        let after = evaluate(&profile, &widened, &rates, &topo);
        assert!(
            after.throughput >= before.throughput - 1e-9,
            "case {case}: replication hurt: {} -> {} ({base} -> {widened})",
            before.throughput,
            after.throughput
        );
    }
}

/// The greedy replication pass itself never returns something worse
/// than its input, even on wildly heterogeneous nodes.
#[test]
fn replication_pass_never_regresses() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x5EED + case);
        let (work, rates, assignment) = instance(&mut rng);
        let profile = PipelineProfile::uniform(work, 1000);
        let base = to_mapping(&assignment);
        let topo = Topology::uniform(rates.len(), LinkSpec::lan());
        let before = evaluate(&profile, &base, &rates, &topo);
        let (_, after) = improve(&profile, base, &rates, &topo, 4);
        assert!(after.throughput >= before.throughput - 1e-12, "case {case}");
    }
}

/// Exhaustive search really is optimal: no random mapping beats it.
#[test]
fn exhaustive_dominates_random_mappings() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x6001 + case);
        let (work, rates, assignment) = instance(&mut rng);
        let profile = PipelineProfile::uniform(work, 1000);
        let topo = Topology::uniform(rates.len(), LinkSpec::lan());
        let best = exhaustive_best(&profile, &rates, &topo, 100_000);
        let random = to_mapping(&assignment);
        let rp = evaluate(&profile, &random, &rates, &topo);
        assert!(
            best.prediction.throughput >= rp.throughput - 1e-12,
            "case {case}: random {random} beat exhaustive: {} > {}",
            rp.throughput,
            best.prediction.throughput
        );
    }
}

/// The contiguous DP dominates random contiguous splits when
/// communication is free (identical objectives).
#[test]
fn dp_dominates_random_contiguous_splits() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x7D0 + case);
        let ns = 2 + rng.next_range(6);
        let k = (1 + rng.next_range(3)).min(ns);
        let work: Vec<f64> = (0..ns).map(|_| 0.5 + 4.0 * rng.next_unit()).collect();
        let profile = PipelineProfile::uniform(work, 0);
        let rates: Vec<f64> = (0..k).map(|_| 0.5 + 2.5 * rng.next_unit()).collect();
        let hosts: Vec<NodeId> = (0..k).map(NodeId).collect();
        let topo = fast_net(k);
        let dp = contiguous_dp(&profile, &rates, &topo, &hosts).expect("feasible");
        let dp_pred = evaluate(&profile, &dp.to_mapping(), &rates, &topo);

        // Build one random contiguous split with k parts.
        let all = compositions(ns, k);
        let parts = &all[rng.next_range(all.len())];
        let mut ends = Vec::with_capacity(k);
        let mut acc = 0;
        for &p in parts {
            acc += p;
            ends.push(acc);
        }
        let rand_cm = ContiguousMapping::new(ends, hosts.clone());
        let rand_pred = evaluate(&profile, &rand_cm.to_mapping(), &rates, &topo);
        assert!(
            dp_pred.throughput >= rand_pred.throughput - 1e-9,
            "case {case}: DP lost to a random split: {} < {}",
            dp_pred.throughput,
            rand_pred.throughput
        );
    }
}

/// The planner never returns a mapping that uses a dead node when a
/// live alternative exists.
#[test]
fn planner_avoids_dead_nodes() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x8BAD + case);
        let ns = 1 + rng.next_range(4);
        let np = 4usize;
        let mut rates = vec![1.0; np];
        let dead = rng.next_range(np);
        rates[dead] = 0.0;
        let profile = PipelineProfile::uniform(vec![1.0; ns], 1000);
        let topo = Topology::uniform(np, LinkSpec::lan());
        let plan = plan(&profile, &rates, &topo, &PlannerConfig::default());
        assert!(
            !plan.mapping.nodes_used().contains(&NodeId(dead)),
            "case {case}: planner used dead node {dead}: {}",
            plan.mapping
        );
        assert!(plan.prediction.throughput > 0.0, "case {case}");
    }
}

/// Mapping diff is empty iff mappings are equal, and symmetric.
#[test]
fn diff_is_consistent() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0x91FF + case);
        let (_, _, a) = instance(&mut rng);
        let np = a.iter().max().unwrap() + 2;
        let ma = to_mapping(&a);
        let mut b = a.clone();
        let idx = rng.next_range(b.len());
        b[idx] = (b[idx] + 1) % np;
        let mb = to_mapping(&b);
        assert!(ma.diff(&ma).is_empty(), "case {case}");
        assert_eq!(ma.diff(&mb), mb.diff(&ma), "case {case}");
        assert_eq!(ma.diff(&mb), vec![idx], "case {case}");
    }
}

/// completion_time(n) is monotone in n and ≥ latency.
#[test]
fn completion_estimate_is_monotone() {
    for case in 0..CASES {
        let mut rng = Rng64::new(0xA0FE + case);
        let (work, rates, assignment) = instance(&mut rng);
        let n1 = 1 + rng.next_range(999) as u64;
        let n2 = 1 + rng.next_range(999) as u64;
        let profile = PipelineProfile::uniform(work, 100);
        let mapping = to_mapping(&assignment);
        let topo = Topology::uniform(rates.len(), LinkSpec::lan());
        let pred = evaluate(&profile, &mapping, &rates, &topo);
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        assert!(
            pred.completion_time(lo) <= pred.completion_time(hi),
            "case {case}"
        );
        assert!(
            pred.completion_time(1) >= pred.latency - 1e-12,
            "case {case}"
        );
    }
}
