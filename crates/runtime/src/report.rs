//! Run reports: everything an experiment needs to print its table row.

use crate::metrics::StageMetrics;
use adapipe_gridsim::fault::FaultPlan;
use adapipe_gridsim::time::{SimDuration, SimTime};
use adapipe_gridsim::trace::ThroughputTimeline;
use adapipe_mapper::mapping::Mapping;

/// One adaptation the controller performed.
#[derive(Clone, Debug)]
pub struct AdaptationEvent {
    /// When the re-mapping was triggered.
    pub at: SimTime,
    /// Mapping before.
    pub from: Mapping,
    /// Mapping after.
    pub to: Mapping,
    /// Stages whose placement changed.
    pub migrated_stages: Vec<usize>,
    /// Predicted throughput ratio (candidate / current) that justified
    /// the move.
    pub predicted_speedup: f64,
    /// Migration cost charged (state transfer + drain overhead).
    pub migration_cost: SimDuration,
}

/// One poison item diverted to the dead-letter channel: the item
/// exhausted a stage's retry budget and the stage's
/// `ResiliencePolicy::dead_letter` chose diversion over failing the
/// run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadLetter {
    /// Sequence number of the diverted item.
    pub seq: u64,
    /// The stage that gave up on it.
    pub stage: usize,
    /// Total attempts consumed (first try + retries).
    pub attempts: u32,
    /// The final attempt's error.
    pub reason: String,
}

/// Summary of one pipeline run (simulated or wall-clock).
#[derive(Debug)]
pub struct RunReport {
    /// Items that reached the sink.
    pub completed: u64,
    /// Time of the last completion (== makespan for closed streams).
    pub makespan: SimTime,
    /// Mean per-item latency (arrival → sink).
    pub mean_latency: SimDuration,
    /// Per-item latency samples (arrival → sink), unsorted. Use
    /// [`RunReport::latency_percentile`] for quantiles. Bounded: runs
    /// beyond ~1M completions retain a deterministic, approximately
    /// uniform subsample (see [`ReportBuilder::record_completion`]), so
    /// quantiles become estimates there while `mean_latency` stays
    /// exact.
    pub latencies: Vec<SimDuration>,
    /// Completions bucketed over time.
    pub timeline: ThroughputTimeline,
    /// Every re-mapping performed.
    pub adaptations: Vec<AdaptationEvent>,
    /// Busy seconds per node.
    pub node_busy: Vec<SimDuration>,
    /// The mapping in force when the run ended.
    pub final_mapping: Mapping,
    /// Planning cycles the controller ran (accepted or not) — the
    /// adaptation-overhead denominator.
    pub planning_cycles: u64,
    /// Observed per-stage service statistics.
    pub stage_metrics: StageMetrics,
    /// True if the run hit its safety horizon before completing.
    pub truncated: bool,
    /// Items re-dealt to a live host after their assigned node went
    /// down (at-least-once replay under the run's fault plan).
    pub replays: u64,
    /// Downtime each node accrued over the run (outages plus crash
    /// tails, clamped to the makespan). Empty when no fault plan ran.
    pub node_downtime: Vec<SimDuration>,
    /// State migrations performed: shard, partial, or whole-instance
    /// moves of declared stage state between hosts, whether triggered
    /// by a planning re-map or by a node death.
    pub migrations: u64,
    /// Total declared-state bytes shipped across hosts by those
    /// migrations (snapshot payload sizes, per the stage specs).
    pub state_bytes_moved: u64,
    /// Declared shard count per stage (0 for stages without keyed
    /// state) — the denominator for shard-rebalance accounting.
    pub stage_shards: Vec<usize>,
    /// Retry attempts consumed across all stages (each re-presentation
    /// of a failed item counts once).
    pub retries: u64,
    /// Attempts whose service time exceeded the stage's declared
    /// per-item timeout.
    pub timeouts: u64,
    /// Poison items diverted to the dead-letter channel instead of
    /// completing (`== dead_letter_log.len()`).
    pub dead_letters: u64,
    /// The dead-letter channel itself: one record per diverted item,
    /// with its originating stage, attempt count, and error.
    pub dead_letter_log: Vec<DeadLetter>,
}

impl RunReport {
    /// Mean throughput over the whole run, items per second.
    pub fn mean_throughput(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / secs
    }

    /// Number of re-mappings performed.
    pub fn adaptation_count(&self) -> usize {
        self.adaptations.len()
    }

    /// Total time charged to migrations.
    pub fn total_migration_cost(&self) -> SimDuration {
        self.adaptations.iter().fold(SimDuration::ZERO, |acc, e| {
            acc.saturating_add(e.migration_cost)
        })
    }

    /// Latency percentile, or `None` if nothing completed or `q` is
    /// NaN. An out-of-range `q` is clamped into `[0, 1]` (q < 0 reads
    /// the minimum, q > 1 the maximum) rather than forwarded into the
    /// quantile kernel, whose interpolation indices it would break.
    pub fn latency_percentile(&self, q: f64) -> Option<SimDuration> {
        if self.latencies.is_empty() || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let mut sorted: Vec<f64> = self.latencies.iter().map(|d| d.as_secs_f64()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        Some(SimDuration::from_secs_f64(
            adapipe_monitor::stats::quantile_sorted(&sorted, q),
        ))
    }

    /// Utilisation of node `i` over the makespan; 0.0 for a node index
    /// the run never covered (reports are often probed with a foreign
    /// grid's node range — out of range is "never busy", not a panic).
    pub fn node_utilisation(&self, i: usize) -> f64 {
        let horizon = self.makespan.as_secs_f64();
        let Some(busy) = self.node_busy.get(i) else {
            return 0.0;
        };
        if horizon <= 0.0 {
            return 0.0;
        }
        (busy.as_secs_f64() / horizon).clamp(0.0, 1.0)
    }

    /// Serialises the report as one machine-readable JSON object, so
    /// bench binaries and long-running services emit comparable records
    /// without ad-hoc formatting. Times are seconds (`f64`); the final
    /// mapping is an array of per-stage host arrays; the per-item
    /// latency samples are summarised as quantiles rather than dumped.
    /// `items_per_sec` repeats `mean_throughput` under the key name the
    /// bench harness uses, so `BENCH_*.json` records are directly
    /// comparable across runs without knowing which tool wrote them.
    ///
    /// **Quantile caveat:** the emitted `latency_p50/p95/p99` values are
    /// computed from the retained latency samples. Runs beyond ~1M
    /// completions retain a decimated subsample (see
    /// [`ReportBuilder::record_completion`]), so on very long streams
    /// these quantiles are *estimates*, while `mean_latency_secs` stays
    /// exact over every completion.
    pub fn to_json(&self) -> String {
        let mapping_json = |m: &Mapping| {
            let stages: Vec<String> = (0..m.len())
                .map(|s| {
                    let hosts: Vec<String> = m
                        .placement(s)
                        .hosts()
                        .iter()
                        .map(|h| h.index().to_string())
                        .collect();
                    format!("[{}]", hosts.join(","))
                })
                .collect();
            format!("[{}]", stages.join(","))
        };
        let adaptations: Vec<String> = self
            .adaptations
            .iter()
            .map(|e| {
                let stages: Vec<String> = e.migrated_stages.iter().map(|s| s.to_string()).collect();
                format!(
                    "{{\"at_secs\":{},\"migrated_stages\":[{}],\"predicted_speedup\":{},\
                     \"migration_cost_secs\":{},\"to\":{}}}",
                    json_f64(e.at.as_secs_f64()),
                    stages.join(","),
                    json_f64(e.predicted_speedup),
                    json_f64(e.migration_cost.as_secs_f64()),
                    mapping_json(&e.to),
                )
            })
            .collect();
        let node_busy: Vec<String> = self
            .node_busy
            .iter()
            .map(|d| json_f64(d.as_secs_f64()))
            .collect();
        let node_downtime: Vec<String> = self
            .node_downtime
            .iter()
            .map(|d| json_f64(d.as_secs_f64()))
            .collect();
        let quantile = |q: f64| {
            self.latency_percentile(q)
                .map_or_else(|| "null".to_string(), |d| json_f64(d.as_secs_f64()))
        };
        let stage_shards: Vec<String> = self.stage_shards.iter().map(|s| s.to_string()).collect();
        format!(
            "{{\"completed\":{},\"makespan_secs\":{},\"mean_throughput\":{},\
             \"items_per_sec\":{},\
             \"mean_latency_secs\":{},\"latency_p50_secs\":{},\"latency_p95_secs\":{},\
             \"latency_p99_secs\":{},\"adaptation_count\":{},\"total_migration_cost_secs\":{},\
             \"planning_cycles\":{},\"truncated\":{},\"replays\":{},\"migrations\":{},\
             \"state_bytes_moved\":{},\"retries\":{},\"timeouts\":{},\"dead_letters\":{},\
             \"stage_shards\":[{}],\"node_busy_secs\":[{}],\
             \"node_downtime_secs\":[{}],\"final_mapping\":{},\"adaptations\":[{}]}}",
            self.completed,
            json_f64(self.makespan.as_secs_f64()),
            json_f64(self.mean_throughput()),
            json_f64(self.mean_throughput()),
            json_f64(self.mean_latency.as_secs_f64()),
            quantile(0.50),
            quantile(0.95),
            quantile(0.99),
            self.adaptation_count(),
            json_f64(self.total_migration_cost().as_secs_f64()),
            self.planning_cycles,
            self.truncated,
            self.replays,
            self.migrations,
            self.state_bytes_moved,
            self.retries,
            self.timeouts,
            self.dead_letters,
            stage_shards.join(","),
            node_busy.join(","),
            node_downtime.join(","),
            mapping_json(&self.final_mapping),
            adaptations.join(","),
        )
    }
}

/// JSON-safe float: finite values render plainly, NaN/∞ become `null`
/// (JSON has no spelling for them).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Upper bound on retained per-item latency samples (8 MiB of
/// `SimDuration`). Beyond it the builder decimates deterministically —
/// see [`ReportBuilder::record_completion`] — so an *open-ended*
/// streaming session can run indefinitely without the report growing
/// per item.
const LATENCY_SAMPLE_CAP: usize = 1 << 20;

/// Accumulates per-completion observations and assembles the final
/// [`RunReport`] — the one place report shape is defined, so every
/// backend's report is identical in structure and derivation.
#[derive(Debug)]
pub struct ReportBuilder {
    expected_items: u64,
    completed: u64,
    latency_sum: SimDuration,
    latencies: Vec<SimDuration>,
    /// Record every `latency_stride`-th completion's latency sample;
    /// doubles whenever the sample buffer hits [`LATENCY_SAMPLE_CAP`].
    latency_stride: u64,
    last_completion: SimTime,
    timeline: ThroughputTimeline,
    replays: u64,
    migrations: u64,
    state_bytes_moved: u64,
    stage_shards: Vec<usize>,
    retries: u64,
    timeouts: u64,
    dead_letter_log: Vec<DeadLetter>,
    /// The run's fault plan and node count; per-node downtime is
    /// settled against the makespan at [`ReportBuilder::finish`].
    faults: Option<(FaultPlan, usize)>,
}

impl ReportBuilder {
    /// Creates a builder for a stream of `expected_items`, bucketing the
    /// throughput timeline at `bucket`. Streaming sessions whose length
    /// is unknown until close pass `u64::MAX` and settle the count later
    /// with [`ReportBuilder::set_expected`].
    pub fn new(bucket: SimDuration, expected_items: u64) -> Self {
        ReportBuilder {
            expected_items,
            completed: 0,
            latency_sum: SimDuration::ZERO,
            latencies: Vec::with_capacity(expected_items.min(4096) as usize),
            latency_stride: 1,
            last_completion: SimTime::ZERO,
            timeline: ThroughputTimeline::new(bucket),
            replays: 0,
            migrations: 0,
            state_bytes_moved: 0,
            stage_shards: Vec::new(),
            retries: 0,
            timeouts: 0,
            dead_letter_log: Vec::new(),
            faults: None,
        }
    }

    /// Settles the expected stream length — a streaming session calls
    /// this at `close()`, when the number of pushed items becomes known.
    pub fn set_expected(&mut self, expected_items: u64) {
        self.expected_items = expected_items;
    }

    /// Declares the fault plan this run executes under, over
    /// `node_count` nodes; [`ReportBuilder::finish`] settles the
    /// per-node downtime from it against the final makespan.
    pub fn set_faults(&mut self, plan: FaultPlan, node_count: usize) {
        self.faults = Some((plan, node_count));
    }

    /// Records one item re-dealt to a live host after its assigned node
    /// went down.
    pub fn record_replay(&mut self) {
        self.replays += 1;
    }

    /// Overwrites the replay counter — for backends that count replays
    /// outside the builder (e.g. an atomic shared across worker
    /// threads) and settle it at teardown.
    pub fn set_replays(&mut self, replays: u64) {
        self.replays = replays;
    }

    /// Settles the state-migration totals — both backends count moves
    /// centrally in the adaptation loop (from mapping diffs) and hand
    /// the totals here at teardown.
    pub fn set_migrations(&mut self, migrations: u64, state_bytes_moved: u64) {
        self.migrations = migrations;
        self.state_bytes_moved = state_bytes_moved;
    }

    /// Declares the per-stage shard counts (0 for stages without keyed
    /// state) so the report can relate migration totals to shard maps.
    pub fn set_stage_shards(&mut self, stage_shards: Vec<usize>) {
        self.stage_shards = stage_shards;
    }

    /// Records `n` retry attempts (re-presentations of failed items).
    pub fn record_retries(&mut self, n: u64) {
        self.retries += n;
    }

    /// Overwrites the retry counter — for backends that count retries
    /// in an atomic shared across worker threads and settle at
    /// teardown.
    pub fn set_retries(&mut self, retries: u64) {
        self.retries = retries;
    }

    /// Records `n` attempts that exceeded their stage's declared
    /// per-item timeout.
    pub fn record_timeouts(&mut self, n: u64) {
        self.timeouts += n;
    }

    /// Overwrites the timeout counter (atomic-settling backends).
    pub fn set_timeouts(&mut self, timeouts: u64) {
        self.timeouts = timeouts;
    }

    /// Diverts one poison item into the dead-letter channel. A
    /// dead-lettered item counts toward stream completion (see
    /// [`ReportBuilder::accounted`]) but not toward `completed`.
    pub fn record_dead_letter(&mut self, letter: DeadLetter) {
        self.dead_letter_log.push(letter);
    }

    /// Dead letters recorded so far.
    pub fn dead_letters(&self) -> u64 {
        self.dead_letter_log.len() as u64
    }

    /// Items the run has settled one way or the other: completions plus
    /// dead letters. This — not `completed` alone — is what a stream
    /// must reach for the run to count as finished rather than
    /// truncated.
    pub fn accounted(&self) -> u64 {
        self.completed + self.dead_letters()
    }

    /// Records one item reaching the sink at `at` after `latency`.
    ///
    /// Memory stays bounded on open-ended streams: the latency *sum*
    /// (and therefore the reported mean) is exact over every
    /// completion, while the per-item samples backing the quantiles are
    /// capped (at ~1M samples) via deterministic doubling
    /// decimation — when the buffer fills, every other sample is
    /// dropped and only every `2×stride`-th completion is sampled from
    /// then on, keeping the retained samples approximately uniform over
    /// the whole run.
    pub fn record_completion(&mut self, at: SimTime, latency: SimDuration) {
        self.timeline.record(at);
        if at > self.last_completion {
            self.last_completion = at;
        }
        self.latency_sum = self.latency_sum.saturating_add(latency);
        if self.latencies.len() >= LATENCY_SAMPLE_CAP {
            let mut keep = false;
            self.latencies.retain(|_| {
                keep = !keep;
                keep
            });
            self.latency_stride *= 2;
        }
        if self.completed.is_multiple_of(self.latency_stride) {
            self.latencies.push(latency);
        }
        self.completed += 1;
    }

    /// Records a whole envelope of items reaching the sink together at
    /// `at` — the batched form of [`ReportBuilder::record_completion`]
    /// for sink collectors that receive one message per envelope.
    ///
    /// The timeline bucket and the makespan watermark are updated once
    /// per envelope instead of once per item (envelopes span
    /// microseconds; timeline buckets span hundreds of milliseconds, so
    /// attributing the whole envelope to its final completion instant
    /// is exact at bucket granularity). The latency *sum* — and
    /// therefore the reported mean — stays exact over every item, and
    /// the stride-decimated quantile sampling is identical to calling
    /// `record_completion` per item.
    pub fn record_envelope(&mut self, at: SimTime, latencies: impl Iterator<Item = SimDuration>) {
        let before = self.completed;
        for latency in latencies {
            self.latency_sum = self.latency_sum.saturating_add(latency);
            if self.latencies.len() >= LATENCY_SAMPLE_CAP {
                let mut keep = false;
                self.latencies.retain(|_| {
                    keep = !keep;
                    keep
                });
                self.latency_stride *= 2;
            }
            if self.completed.is_multiple_of(self.latency_stride) {
                self.latencies.push(latency);
            }
            self.completed += 1;
        }
        let n = self.completed - before;
        if n == 0 {
            return;
        }
        self.timeline.record_n(at, n);
        if at > self.last_completion {
            self.last_completion = at;
        }
    }

    /// Completions recorded so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// True once every expected item has been settled (completed or
    /// dead-lettered).
    pub fn all_done(&self) -> bool {
        self.accounted() >= self.expected_items
    }

    /// Assembles the final report from the accumulated completions plus
    /// the run's terminal state.
    pub fn finish(
        self,
        final_mapping: Mapping,
        adaptations: Vec<AdaptationEvent>,
        planning_cycles: u64,
        node_busy: Vec<SimDuration>,
        stage_metrics: StageMetrics,
    ) -> RunReport {
        let truncated = self.accounted() < self.expected_items;
        let node_downtime = match &self.faults {
            Some((plan, node_count)) => plan.downtime(*node_count, self.last_completion),
            None => Vec::new(),
        };
        RunReport {
            completed: self.completed,
            makespan: self.last_completion,
            mean_latency: if self.completed > 0 {
                SimDuration::from_secs_f64(self.latency_sum.as_secs_f64() / self.completed as f64)
            } else {
                SimDuration::ZERO
            },
            latencies: self.latencies,
            timeline: self.timeline,
            adaptations,
            node_busy,
            final_mapping,
            planning_cycles,
            stage_metrics,
            truncated,
            replays: self.replays,
            node_downtime,
            migrations: self.migrations,
            state_bytes_moved: self.state_bytes_moved,
            stage_shards: self.stage_shards,
            retries: self.retries,
            timeouts: self.timeouts,
            dead_letters: self.dead_letter_log.len() as u64,
            dead_letter_log: self.dead_letter_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_gridsim::node::NodeId;

    fn report(completed: u64, makespan_s: f64) -> RunReport {
        RunReport {
            completed,
            makespan: SimTime::from_secs_f64(makespan_s),
            mean_latency: SimDuration::from_secs(1),
            latencies: vec![SimDuration::from_secs(1); completed as usize],
            timeline: ThroughputTimeline::new(SimDuration::from_secs(1)),
            adaptations: vec![],
            node_busy: vec![SimDuration::from_secs(5), SimDuration::ZERO],
            final_mapping: Mapping::from_assignment(&[NodeId(0)]),
            planning_cycles: 0,
            stage_metrics: StageMetrics::new(1),
            truncated: false,
            replays: 0,
            node_downtime: Vec::new(),
            migrations: 0,
            state_bytes_moved: 0,
            stage_shards: Vec::new(),
            retries: 0,
            timeouts: 0,
            dead_letters: 0,
            dead_letter_log: Vec::new(),
        }
    }

    #[test]
    fn mean_throughput_divides_by_makespan() {
        let r = report(100, 50.0);
        assert!((r.mean_throughput() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_makespan_throughput_is_zero() {
        let r = report(0, 0.0);
        assert_eq!(r.mean_throughput(), 0.0);
        assert_eq!(r.node_utilisation(0), 0.0);
    }

    #[test]
    fn utilisation_clamps() {
        let r = report(10, 2.0);
        // 5 s busy over 2 s horizon clamps to 1.
        assert_eq!(r.node_utilisation(0), 1.0);
        assert_eq!(r.node_utilisation(1), 0.0);
    }

    #[test]
    fn node_utilisation_is_zero_out_of_range() {
        // Probing a node index the run never covered must read as
        // "never busy", not panic (node_busy has 2 entries here).
        let r = report(10, 2.0);
        assert_eq!(r.node_utilisation(2), 0.0);
        assert_eq!(r.node_utilisation(usize::MAX), 0.0);
        // In-range indices are unaffected.
        assert_eq!(r.node_utilisation(0), 1.0);
    }

    #[test]
    fn latency_percentile_rejects_nan_and_clamps_out_of_range() {
        let mut r = report(3, 10.0);
        r.latencies = vec![
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(9),
        ];
        // NaN has no meaningful quantile: None, not a poisoned index.
        assert_eq!(r.latency_percentile(f64::NAN), None);
        // q < 0 clamps to the minimum, q > 1 to the maximum.
        assert_eq!(r.latency_percentile(-0.5), Some(SimDuration::from_secs(1)));
        assert_eq!(r.latency_percentile(1.5), Some(SimDuration::from_secs(9)));
    }

    #[test]
    fn replays_and_downtime_flow_into_the_report() {
        use adapipe_gridsim::fault::FaultPlan;
        let mut b = ReportBuilder::new(SimDuration::from_secs(1), 2);
        b.record_completion(SimTime::from_secs_f64(10.0), SimDuration::from_secs(1));
        b.record_completion(SimTime::from_secs_f64(40.0), SimDuration::from_secs(1));
        b.record_replay();
        b.record_replay();
        // Node 1 is out [5, 15) and crashed at 30: downtime clamps to
        // the 40 s makespan → 10 + 10 = 20 s.
        let plan = FaultPlan::new()
            .outage(
                NodeId(1),
                SimTime::from_secs_f64(5.0),
                SimTime::from_secs_f64(15.0),
            )
            .crash(NodeId(1), SimTime::from_secs_f64(30.0));
        b.set_faults(plan, 2);
        let r = b.finish(
            Mapping::from_assignment(&[NodeId(0)]),
            vec![],
            0,
            vec![SimDuration::ZERO; 2],
            StageMetrics::new(1),
        );
        assert_eq!(r.replays, 2);
        assert_eq!(r.node_downtime.len(), 2);
        assert_eq!(r.node_downtime[0], SimDuration::ZERO);
        assert!((r.node_downtime[1].as_secs_f64() - 20.0).abs() < 1e-9);
        let json = r.to_json();
        assert!(json.contains("\"replays\":2"), "missing replays in {json}");
        assert!(json.contains("\"node_downtime_secs\":[0,20]"), "{json}");
    }

    #[test]
    fn migration_totals_flow_into_the_report_and_json() {
        let mut b = ReportBuilder::new(SimDuration::from_secs(1), 1);
        b.record_completion(SimTime::from_secs_f64(1.0), SimDuration::from_secs(1));
        b.set_migrations(3, 1024);
        b.set_stage_shards(vec![4, 0]);
        let r = b.finish(
            Mapping::from_assignment(&[NodeId(0)]),
            vec![],
            0,
            vec![SimDuration::ZERO],
            StageMetrics::new(1),
        );
        assert_eq!(r.migrations, 3);
        assert_eq!(r.state_bytes_moved, 1024);
        assert_eq!(r.stage_shards, vec![4, 0]);
        let json = r.to_json();
        assert!(json.contains("\"migrations\":3"), "{json}");
        assert!(json.contains("\"state_bytes_moved\":1024"), "{json}");
        assert!(json.contains("\"stage_shards\":[4,0]"), "{json}");
    }

    #[test]
    fn resilience_counters_flow_into_the_report_and_json() {
        let mut b = ReportBuilder::new(SimDuration::from_secs(1), 3);
        b.record_completion(SimTime::from_secs_f64(1.0), SimDuration::from_secs(1));
        b.record_completion(SimTime::from_secs_f64(2.0), SimDuration::from_secs(1));
        b.record_retries(4);
        b.record_timeouts(1);
        assert!(!b.all_done(), "2 of 3 settled");
        b.record_dead_letter(DeadLetter {
            seq: 1,
            stage: 2,
            attempts: 3,
            reason: "checksum mismatch".into(),
        });
        // A dead letter settles the third item: the stream is complete,
        // not truncated, even though only 2 items *completed*.
        assert_eq!(b.accounted(), 3);
        assert!(b.all_done());
        let r = b.finish(
            Mapping::from_assignment(&[NodeId(0)]),
            vec![],
            0,
            vec![SimDuration::ZERO],
            StageMetrics::new(1),
        );
        assert!(!r.truncated);
        assert_eq!(r.completed, 2);
        assert_eq!((r.retries, r.timeouts, r.dead_letters), (4, 1, 1));
        assert_eq!(r.dead_letter_log.len(), 1);
        assert_eq!(r.dead_letter_log[0].stage, 2);
        assert_eq!(r.dead_letter_log[0].attempts, 3);
        let json = r.to_json();
        for key in ["\"retries\":4", "\"timeouts\":1", "\"dead_letters\":1"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn latency_percentiles_interpolate() {
        let mut r = report(3, 10.0);
        r.latencies = vec![
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(9),
        ];
        assert_eq!(r.latency_percentile(0.0), Some(SimDuration::from_secs(1)));
        assert_eq!(r.latency_percentile(0.5), Some(SimDuration::from_secs(2)));
        assert_eq!(r.latency_percentile(1.0), Some(SimDuration::from_secs(9)));
        r.latencies.clear();
        assert_eq!(r.latency_percentile(0.5), None);
    }

    #[test]
    fn builder_assembles_report_identically_for_any_backend() {
        let mut b = ReportBuilder::new(SimDuration::from_secs(1), 3);
        b.record_completion(SimTime::from_secs_f64(1.0), SimDuration::from_secs(1));
        b.record_completion(SimTime::from_secs_f64(3.0), SimDuration::from_secs(3));
        assert_eq!(b.completed(), 2);
        assert!(!b.all_done());
        let r = b.finish(
            Mapping::from_assignment(&[NodeId(0)]),
            vec![],
            4,
            vec![SimDuration::from_secs(2)],
            StageMetrics::new(1),
        );
        assert_eq!(r.completed, 2);
        assert!(r.truncated, "2 of 3 expected items is a truncated run");
        assert_eq!(r.makespan, SimTime::from_secs_f64(3.0));
        assert_eq!(r.mean_latency, SimDuration::from_secs(2));
        assert_eq!(r.planning_cycles, 4);
    }

    #[test]
    fn builder_with_no_completions_reports_zeroes() {
        let b = ReportBuilder::new(SimDuration::from_secs(1), 0);
        assert!(b.all_done());
        let r = b.finish(
            Mapping::from_assignment(&[NodeId(0)]),
            vec![],
            0,
            vec![],
            StageMetrics::new(1),
        );
        assert_eq!(r.completed, 0);
        assert!(!r.truncated);
        assert_eq!(r.makespan, SimTime::ZERO);
        assert_eq!(r.mean_latency, SimDuration::ZERO);
    }

    #[test]
    fn latency_samples_stay_bounded_on_endless_streams() {
        // 2.5 M completions — an open-ended session's lifetime in
        // miniature. The sample buffer must stay at or under the cap,
        // the mean must stay exact, and quantiles must stay sane.
        let mut b = ReportBuilder::new(SimDuration::from_secs(3600), u64::MAX);
        let n = 2_500_000u64;
        for i in 0..n {
            // Latencies 1..=10 s, cycling: mean 5.5 s, p50 ≈ 5–6 s.
            let latency = SimDuration::from_secs((i % 10) + 1);
            b.record_completion(SimTime::from_secs_f64(i as f64 * 1e-3), latency);
        }
        assert_eq!(b.completed(), n);
        assert!(
            b.latencies.len() <= LATENCY_SAMPLE_CAP,
            "samples grew past the cap: {}",
            b.latencies.len()
        );
        // Still a substantial sample after decimation.
        assert!(b.latencies.len() > LATENCY_SAMPLE_CAP / 4);
        let r = b.finish(
            Mapping::from_assignment(&[NodeId(0)]),
            vec![],
            0,
            vec![SimDuration::ZERO],
            StageMetrics::new(1),
        );
        assert!(
            (r.mean_latency.as_secs_f64() - 5.5).abs() < 1e-3,
            "mean is exact"
        );
        let p50 = r.latency_percentile(0.5).unwrap().as_secs_f64();
        assert!((4.0..=7.0).contains(&p50), "p50 estimate off: {p50}");
    }

    #[test]
    fn record_envelope_matches_per_item_recording() {
        // Same items recorded one-by-one vs. as envelopes must agree on
        // count, mean, makespan, timeline totals, and retained samples.
        let mut per_item = ReportBuilder::new(SimDuration::from_secs(1), u64::MAX);
        let mut batched = ReportBuilder::new(SimDuration::from_secs(1), u64::MAX);
        let latencies: Vec<SimDuration> = (1..=10).map(SimDuration::from_secs).collect();
        let at = SimTime::from_secs_f64(2.5);
        for &l in &latencies {
            per_item.record_completion(at, l);
        }
        batched.record_envelope(at, latencies.iter().copied());
        // An empty envelope is a no-op.
        batched.record_envelope(SimTime::from_secs_f64(9.0), std::iter::empty());
        assert_eq!(batched.completed(), per_item.completed());
        assert_eq!(batched.latencies, per_item.latencies);
        assert_eq!(batched.latency_sum, per_item.latency_sum);
        assert_eq!(batched.last_completion, per_item.last_completion);
        assert_eq!(batched.timeline.total(), per_item.timeline.total());
    }

    #[test]
    fn record_envelope_decimates_past_the_sample_cap() {
        let mut b = ReportBuilder::new(SimDuration::from_secs(3600), u64::MAX);
        let n = 2_500_000u64;
        let batch = 64u64;
        let mut i = 0u64;
        while i < n {
            let count = batch.min(n - i);
            let env: Vec<SimDuration> = (i..i + count)
                .map(|k| SimDuration::from_secs((k % 10) + 1))
                .collect();
            b.record_envelope(SimTime::from_secs_f64(i as f64 * 1e-3), env.into_iter());
            i += count;
        }
        assert_eq!(b.completed(), n);
        assert!(b.latencies.len() <= LATENCY_SAMPLE_CAP);
        assert!(b.latencies.len() > LATENCY_SAMPLE_CAP / 4);
        let r = b.finish(
            Mapping::from_assignment(&[NodeId(0)]),
            vec![],
            0,
            vec![SimDuration::ZERO],
            StageMetrics::new(1),
        );
        assert!((r.mean_latency.as_secs_f64() - 5.5).abs() < 1e-3);
    }

    #[test]
    fn set_expected_settles_an_open_stream() {
        let mut b = ReportBuilder::new(SimDuration::from_secs(1), u64::MAX);
        b.record_completion(SimTime::from_secs_f64(1.0), SimDuration::from_secs(1));
        assert!(!b.all_done());
        b.set_expected(1);
        assert!(b.all_done());
        let r = b.finish(
            Mapping::from_assignment(&[NodeId(0)]),
            vec![],
            0,
            vec![SimDuration::ZERO],
            StageMetrics::new(1),
        );
        assert!(!r.truncated);
    }

    #[test]
    fn to_json_emits_every_headline_field() {
        let mut r = report(10, 5.0);
        let m = Mapping::from_assignment(&[NodeId(0)]);
        r.adaptations.push(AdaptationEvent {
            at: SimTime::from_secs_f64(2.0),
            from: m.clone(),
            to: m,
            migrated_stages: vec![0],
            predicted_speedup: 1.4,
            migration_cost: SimDuration::from_millis(100),
        });
        let json = r.to_json();
        for key in [
            "\"completed\":10",
            "\"makespan_secs\":5",
            "\"mean_throughput\":2",
            "\"items_per_sec\":2",
            "\"latency_p95_secs\":",
            "\"adaptation_count\":1",
            "\"planning_cycles\":0",
            "\"truncated\":false",
            "\"final_mapping\":[[0]]",
            "\"migrated_stages\":[0]",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Structurally sound: balanced braces/brackets, no raw NaN/inf.
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "unbalanced JSON: {json}");
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn to_json_renders_non_finite_values_as_null() {
        let mut r = report(0, 0.0);
        r.mean_latency = SimDuration::from_secs_f64(0.0);
        let json = r.to_json();
        // No completions: quantiles are null, throughput is finite 0.
        assert!(json.contains("\"latency_p50_secs\":null"));
        assert!(json.contains("\"mean_throughput\":0"));
    }

    #[test]
    fn migration_cost_sums_events() {
        let mut r = report(1, 1.0);
        let m = Mapping::from_assignment(&[NodeId(0)]);
        for _ in 0..2 {
            r.adaptations.push(AdaptationEvent {
                at: SimTime::ZERO,
                from: m.clone(),
                to: m.clone(),
                migrated_stages: vec![0],
                predicted_speedup: 1.5,
                migration_cost: SimDuration::from_millis(250),
            });
        }
        assert_eq!(r.adaptation_count(), 2);
        assert_eq!(r.total_migration_cost(), SimDuration::from_millis(500));
    }
}
