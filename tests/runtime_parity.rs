//! Cross-engine parity through the *unified* API: the same built
//! pipeline (spec + policy + seed) must behave the same on both
//! execution backends, because both run the same adaptive runtime and
//! both now sit behind one `Pipeline::builder()` surface. One scenario —
//! a node collapsing shortly after launch — is written exactly once and
//! parameterised by [`Backend`].

use adapipe::prelude::*;
use std::time::Duration;

fn n(i: usize) -> NodeId {
    NodeId(i)
}

/// Per-item work each stage performs, as wall/sim seconds.
const STAGE_SECS: f64 = 0.004;
const ITEMS: u64 = 150;
/// Node 1 collapses to 5 % availability at t = 0.3 s.
fn collapse() -> LoadModel {
    LoadModel::step(1.0, 0.05, SimTime::from_secs_f64(0.3))
}

fn stage_spec(name: &str) -> StageSpec {
    StageSpec::balanced(name, STAGE_SECS, 8)
}

/// The one scenario program: two stages that spin for their declared
/// work (the threaded backend runs them; the simulator runs the
/// metadata), under `policy`, fed by the item index.
fn scenario(policy: Policy) -> Pipeline<u64, u64> {
    Pipeline::<u64>::builder()
        .stage_with(stage_spec("a"), |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x + 1
        })
        .stage_with(stage_spec("b"), |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x + 1
        })
        .policy(policy)
        .feed(|i| i)
        .build()
        .expect("scenario builds")
}

/// The run configuration, identical for both backends.
fn scenario_cfg(noise_seed: u64) -> RunConfig {
    RunConfig {
        items: ITEMS,
        initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1)])),
        observation_noise: 0.05,
        noise_seed,
        timeline_bucket: Some(SimDuration::from_millis(500)),
        ..RunConfig::default()
    }
}

/// The simulated grid twin of the vnode box.
fn scenario_grid() -> GridSpec {
    let nodes = (0..3)
        .map(|i| {
            let load = if i == 1 {
                collapse()
            } else {
                LoadModel::free()
            };
            Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), load)
        })
        .collect();
    GridSpec::new(nodes, Topology::uniform(3, LinkSpec::local()))
}

fn scenario_vnodes() -> Vec<VNodeSpec> {
    vec![
        VNodeSpec::free("v0"),
        VNodeSpec::free("v1").with_load(collapse()),
        VNodeSpec::free("v2"),
    ]
}

/// Asserts the two backends agree on the observable adaptive behaviour.
fn assert_parity(policy: Policy) {
    let grid = scenario_grid();
    let sim = scenario(policy)
        .run(Backend::Sim(&grid), scenario_cfg(7))
        .expect("sim run")
        .report;
    let threaded = scenario(policy)
        .run(Backend::Threads(scenario_vnodes()), scenario_cfg(7))
        .expect("threaded run");

    // Same completed-item counts on both backends.
    assert_eq!(sim.completed, ITEMS, "sim backend lost items");
    assert_eq!(
        threaded.report.completed, ITEMS,
        "threaded backend lost items"
    );
    assert_eq!(sim.completed, threaded.report.completed);

    // Both adapt away from the collapsed node (non-empty event logs with
    // identical structure: the shared runtime assembled both reports).
    assert!(
        sim.adaptation_count() >= 1,
        "sim backend never adapted under {policy:?}"
    );
    assert!(
        threaded.report.adaptation_count() >= 1,
        "threaded backend never adapted under {policy:?}"
    );
    for report in [&sim, &threaded.report] {
        assert!(report.planning_cycles >= 1);
        assert_eq!(report.stage_metrics.len(), 2, "one stats slot per stage");
        for event in &report.adaptations {
            assert!(!event.migrated_stages.is_empty());
            assert!(event.predicted_speedup > 1.0);
        }
    }

    // Exactly-once processing on the threaded side (x + 2 per item).
    let expect: Vec<u64> = (0..ITEMS).map(|x| x + 2).collect();
    assert_eq!(threaded.outputs, expect);
}

#[test]
fn parity_under_periodic_policy() {
    assert_parity(Policy::Periodic {
        interval: SimDuration::from_millis(200),
    });
}

#[test]
fn parity_under_reactive_policy() {
    assert_parity(Policy::Reactive {
        interval: SimDuration::from_millis(200),
        degradation: 0.6,
    });
}

// --- adaptation behaviour on the threaded backend alone ---------------
// (These exercise the shared runtime's policies through the unified
// API; the scenarios need real threads because they assert on wall
// clocks and real outputs.)

fn spin_scenario(policy: Policy, ms: u64) -> Pipeline<u64, u64> {
    Pipeline::<u64>::builder()
        .stage_with(
            StageSpec::balanced("a", ms as f64 / 1000.0, 8),
            move |x: u64| {
                spin_for(Duration::from_millis(ms));
                x + 1
            },
        )
        .stage_with(
            StageSpec::balanced("b", ms as f64 / 1000.0, 8),
            move |x: u64| {
                spin_for(Duration::from_millis(ms));
                x + 1
            },
        )
        .policy(policy)
        .feed(|i| i)
        .build()
        .expect("spin scenario builds")
}

#[test]
fn adaptive_engine_remaps_away_from_loaded_node() {
    // Node 1 collapses to 5 % availability 300 ms into the run; the
    // periodic controller must move its stage elsewhere.
    let pipeline = spin_scenario(
        Policy::Periodic {
            interval: SimDuration::from_millis(200),
        },
        4,
    );
    let cfg = RunConfig {
        items: 150,
        initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1)])),
        ..RunConfig::default()
    };
    let outcome = pipeline
        .run(Backend::Threads(scenario_vnodes()), cfg)
        .expect("threaded run");
    assert_eq!(outcome.report.completed, 150);
    assert!(
        outcome.report.adaptation_count() >= 1,
        "controller must re-map at least once"
    );
    // Final mapping avoids the loaded node.
    let final_hosts = outcome.report.final_mapping.nodes_used();
    assert!(
        !final_hosts.contains(&n(1)),
        "stage still on loaded node: {}",
        outcome.report.final_mapping
    );
    // And every item still processed exactly once, in order.
    let expect: Vec<u64> = (0..150).map(|x| x + 2).collect();
    assert_eq!(outcome.outputs, expect);
}

#[test]
fn reactive_policy_recovers_on_engine() {
    // Same scenario as the periodic test, but the reactive policy only
    // plans when observed throughput degrades.
    let pipeline = spin_scenario(
        Policy::Reactive {
            interval: SimDuration::from_millis(200),
            degradation: 0.6,
        },
        4,
    );
    let cfg = RunConfig {
        items: 200,
        initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1)])),
        ..RunConfig::default()
    };
    let outcome = pipeline
        .run(Backend::Threads(scenario_vnodes()), cfg)
        .expect("threaded run");
    assert_eq!(outcome.report.completed, 200);
    assert!(
        outcome.report.adaptation_count() >= 1,
        "reactive controller must react to the collapse"
    );
    let expect: Vec<u64> = (0..200).map(|x| x + 2).collect();
    assert_eq!(outcome.outputs, expect);
}

#[test]
fn oracle_policy_runs_on_engine() {
    let pipeline = Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("a", 0.003, 8), |x: u64| {
            spin_for(Duration::from_millis(3));
            x + 1
        })
        .policy(Policy::Oracle {
            interval: SimDuration::from_millis(150),
        })
        .feed(|i| i)
        .build()
        .expect("oracle scenario builds");
    let vnodes = vec![
        VNodeSpec::free("v0").with_load(LoadModel::step(1.0, 0.05, SimTime::from_secs_f64(0.2))),
        VNodeSpec::free("v1"),
    ];
    let cfg = RunConfig {
        items: 150,
        initial_mapping: Some(Mapping::all_on(n(0), 1)),
        ..RunConfig::default()
    };
    let outcome = pipeline
        .run(Backend::Threads(vnodes), cfg)
        .expect("threaded run");
    assert_eq!(outcome.report.completed, 150);
    assert!(outcome.report.adaptation_count() >= 1);
    assert!(!outcome.report.final_mapping.placement(0).contains(n(0)));
}

#[test]
fn observation_noise_on_engine_is_tolerated() {
    let pipeline = spin_scenario(
        Policy::Periodic {
            interval: SimDuration::from_millis(150),
        },
        2,
    );
    let cfg = RunConfig {
        items: 100,
        observation_noise: 0.10,
        ..RunConfig::default()
    };
    let outcome = pipeline
        .run(
            Backend::Threads(vec![VNodeSpec::free("v0"), VNodeSpec::free("v1")]),
            cfg,
        )
        .expect("threaded run");
    assert_eq!(outcome.report.completed, 100);
    let expect: Vec<u64> = (0..100).map(|x| x + 2).collect();
    assert_eq!(outcome.outputs, expect);
}

#[test]
fn planning_cycles_are_reported() {
    // Pace the input (through the unified arrivals declaration) so the
    // run outlives the 2-tick warm-up by a comfortable margin.
    let pipeline = Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("a", 0.002, 8), |x: u64| {
            spin_for(Duration::from_millis(2));
            x + 1
        })
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(100),
        })
        .arrivals(ArrivalProcess::Uniform { rate: 200.0 }) // 150 items → ≥ 750 ms
        .feed(|i| i)
        .build()
        .expect("paced scenario builds");
    let outcome = pipeline
        .run(
            Backend::Threads(vec![VNodeSpec::free("v0"), VNodeSpec::free("v1")]),
            RunConfig {
                items: 150,
                ..RunConfig::default()
            },
        )
        .expect("threaded run");
    assert!(outcome.report.planning_cycles >= 1);
}
