//! Windowed demand sensing and share arbitration for one node pool.
//!
//! Per sensing window the cluster observes, for every live tenant, two
//! cheap counters: whether the tenant *progressed* (completed anything
//! since the last window) and how many of its items sit *backlogged* in
//! the pool's worker inboxes. From these a per-tenant **demand** — the
//! capacity fraction the tenant could productively use — is derived:
//!
//! * backlogged ⇒ the tenant is supply-limited: it could use the whole
//!   pool (demand 1.0);
//! * progressing without backlog ⇒ the tenant keeps up with its current
//!   grant: demand = current share (its surplus, if any, is released
//!   only when it goes idle — a keeping-up tenant is never squeezed);
//! * idle (no progress, no backlog) ⇒ demand decays to zero after a
//!   grace period of [`IDLE_GRACE`] windows, releasing even the
//!   tenant's `min_share` floor to the others. The grace period keeps a
//!   briefly quiet tenant (e.g. between request bursts) from losing its
//!   guarantee and having to re-earn it with queueing delay.
//!
//! The demands feed [`adapipe_mapper::share::arbitrate`] (weighted
//! progressive filling under `min_share`/`max_share` quotas); the
//! resulting shares drive both enforcement (weighted-fair envelope
//! admission at the worker inboxes) and planning (each tenant's planner
//! sees the pool scaled by its share).

use adapipe_mapper::share::{arbitrate, ShareQuota};

/// Idle windows a tenant may coast before its demand — and with it its
/// `min_share` floor — is released to the other tenants.
pub const IDLE_GRACE: u32 = 3;

/// What the cluster observed about one tenant over one sensing window.
#[derive(Clone, Copy, Debug)]
pub struct TenantSignal {
    /// Items of this tenant currently queued in the pool's inboxes.
    pub backlog: u64,
    /// True if the tenant completed at least one item this window.
    pub progressed: bool,
    /// Consecutive fully idle windows so far (maintained by the
    /// caller; reset to zero whenever the tenant progresses or queues).
    pub idle_windows: u32,
    /// The share currently granted to the tenant.
    pub share: f64,
}

/// Derives each tenant's demand — the capacity fraction it could
/// productively use — from its window signal (see the module docs).
pub fn window_demands(signals: &[TenantSignal]) -> Vec<f64> {
    signals
        .iter()
        .map(|s| {
            if s.backlog > 0 {
                1.0
            } else if s.progressed || s.idle_windows < IDLE_GRACE {
                // Keeping up, or within the idle grace period: hold the
                // current grant (never squeeze a live tenant mid-burst).
                s.share
            } else {
                0.0
            }
        })
        .collect()
}

/// One arbitration window: demands from the signals, then weighted
/// progressive filling under the quotas. Returns the new share per
/// tenant, aligned with the input order.
pub fn arbitrate_window(signals: &[TenantSignal], quotas: &[ShareQuota]) -> Vec<f64> {
    arbitrate(&window_demands(signals), quotas)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(backlog: u64, progressed: bool, idle: u32, share: f64) -> TenantSignal {
        TenantSignal {
            backlog,
            progressed,
            idle_windows: idle,
            share,
        }
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn backlogged_tenants_split_the_pool_by_weight() {
        let signals = [sig(100, true, 0, 0.5), sig(100, true, 0, 0.5)];
        let quotas = [ShareQuota::weighted(3.0), ShareQuota::weighted(1.0)];
        let s = arbitrate_window(&signals, &quotas);
        assert!(close(s[0], 0.75) && close(s[1], 0.25), "{s:?}");
    }

    #[test]
    fn keeping_up_tenant_holds_its_grant_against_a_spike() {
        // Tenant 0 keeps up on 0.4; tenant 1 has a huge backlog. The
        // spike takes the surplus but never squeezes the live tenant.
        let signals = [sig(0, true, 0, 0.4), sig(10_000, true, 0, 0.6)];
        let quotas = [ShareQuota::default(), ShareQuota::default()];
        let s = arbitrate_window(&signals, &quotas);
        assert!(close(s[0], 0.4), "{s:?}");
        assert!(close(s[1], 0.6), "{s:?}");
    }

    #[test]
    fn briefly_idle_tenant_keeps_its_share_through_the_grace() {
        let signals = [
            sig(0, false, IDLE_GRACE - 1, 0.5),
            sig(10_000, true, 0, 0.5),
        ];
        let quotas = [ShareQuota::default(), ShareQuota::default()];
        let s = arbitrate_window(&signals, &quotas);
        assert!(close(s[0], 0.5), "{s:?}");
    }

    #[test]
    fn long_idle_tenant_releases_everything() {
        let signals = [sig(0, false, IDLE_GRACE, 0.5), sig(10_000, true, 0, 0.5)];
        // Even a guaranteed floor is released once truly idle.
        let quotas = [ShareQuota::bounded(0.4, 1.0), ShareQuota::default()];
        let s = arbitrate_window(&signals, &quotas);
        assert!(close(s[0], 0.0) && close(s[1], 1.0), "{s:?}");
    }

    #[test]
    fn floor_shields_a_backlogged_tenant_from_a_heavy_peer() {
        let signals = [sig(50, true, 0, 0.5), sig(50, true, 0, 0.5)];
        let quotas = [ShareQuota::bounded(0.3, 1.0), ShareQuota::weighted(100.0)];
        let s = arbitrate_window(&signals, &quotas);
        assert!(s[0] >= 0.3 - 1e-9, "{s:?}");
    }
}
