//! Shard arithmetic shared by router, planner, and backends.
//!
//! These two functions are the *entire* contract for keyed state
//! placement. Everything that must agree on which replica owns which
//! key — the lock-free routing hot path, the planner's migration-cost
//! model, and both execution backends' hand-off logic — calls the same
//! two mods, so agreement holds by construction rather than by
//! coordination.

/// The shard a key hash belongs to. Fixed for the run (the shard count
/// is declared at build time), so a key's shard never changes — only
/// the shard's *owner* does, when the stage's replica width changes.
#[inline]
pub fn shard_of(hash: u64, shards: usize) -> usize {
    debug_assert!(shards > 0, "keyed stage must declare at least one shard");
    (hash % shards.max(1) as u64) as usize
}

/// The replica index (position in the stage's host list) that owns
/// `shard` when the stage runs `width` replicas. Deterministic in the
/// pair, so a re-map moves exactly the shards whose owner index maps to
/// a different host — nothing else.
#[inline]
pub fn owner_of(shard: usize, width: usize) -> usize {
    debug_assert!(width > 0, "a placed stage has at least one host");
    shard % width.max(1)
}

/// FNV-1a over raw bytes: a tiny, dependency-free default for callers
/// that key on strings or byte identifiers rather than integers.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shard_lands_in_range() {
        for hash in 0..1000u64 {
            assert!(shard_of(hash, 7) < 7);
        }
    }

    #[test]
    fn ownership_partitions_shards_across_replicas() {
        // 8 shards over width 3: every replica owns a non-empty set and
        // the sets partition the shard space.
        let mut owned = [0usize; 3];
        for shard in 0..8 {
            owned[owner_of(shard, 3)] += 1;
        }
        assert_eq!(owned.iter().sum::<usize>(), 8);
        assert!(owned.iter().all(|&n| n > 0));
    }

    #[test]
    fn widening_moves_only_reassigned_shards() {
        // Width 1 → 2: shards whose owner index stays 0 do not move.
        let moved: Vec<usize> = (0..6)
            .filter(|&s| owner_of(s, 1) != owner_of(s, 2))
            .collect();
        assert_eq!(moved, vec![1, 3, 5]);
    }

    #[test]
    fn fnv1a_spreads_and_is_stable() {
        assert_ne!(fnv1a(b"alice"), fnv1a(b"bob"));
        assert_eq!(fnv1a(b"alice"), fnv1a(b"alice"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
