//! Fault-tolerant adaptive execution, cross-backend: the same
//! `FaultPlan` schedule — written once against the unified
//! `Pipeline`/`RunSession` surface — must yield zero lost items on both
//! backends, with the `NodeDown` transition observed, a committed
//! re-map excluding the crashed node, stranded items replayed
//! (at-least-once delivery, exactly-once observable output), and the
//! same typed errors for the unrecoverable cases (stateful stage pinned
//! to a dead node, permanent crash under a static policy).

use adapipe::prelude::*;
use std::time::Duration;

fn n(i: usize) -> NodeId {
    NodeId(i)
}

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

/// Per-item work each stage performs, as wall/sim seconds.
const STAGE_SECS: f64 = 0.004;
const ITEMS: u64 = 120;

/// Node 1 crashes at t = 0.25 s — mid-stream on either clock.
fn crash_plan() -> FaultPlan {
    FaultPlan::new().crash(n(1), secs(0.25))
}

/// The scenario program: two spinning stages under a fast periodic
/// policy, launch-mapped onto [n0, n1] so the crash strands stage "b".
fn scenario(plan: FaultPlan) -> Pipeline<u64, u64> {
    Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("a", STAGE_SECS, 8), |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x + 1
        })
        .stage_with(StageSpec::balanced("b", STAGE_SECS, 8), |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x + 1
        })
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(100),
        })
        .faults(plan)
        .feed(|i| i)
        .build()
        .expect("scenario builds")
}

fn scenario_cfg() -> RunConfig {
    RunConfig {
        items: ITEMS,
        initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1)])),
        timeline_bucket: Some(SimDuration::from_millis(500)),
        ..RunConfig::default()
    }
}

fn grid3() -> GridSpec {
    testbed_small3()
}

fn vnodes3() -> Vec<VNodeSpec> {
    (0..3).map(|i| VNodeSpec::free(format!("v{i}"))).collect()
}

/// What one backend observed under the fault schedule.
struct ChaosOutcome {
    outputs: Vec<u64>,
    report: RunReport,
    error: Option<RunError>,
    node_down: Vec<usize>,
    node_up: Vec<usize>,
    replay_events: usize,
    /// Final placements of every committed re-map, in commit order.
    remaps: Vec<Mapping>,
}

/// Drives one live session to completion under the scenario and
/// collects every fault-relevant observation.
fn drive(backend: Backend<'_>, plan: FaultPlan) -> ChaosOutcome {
    let mut session = scenario(plan)
        .spawn(backend, scenario_cfg())
        .expect("session spawns");
    let events = session.events();
    for i in 0..ITEMS {
        session.push(i).unwrap();
    }
    let handle = session.drain();
    let mut outcome = ChaosOutcome {
        outputs: handle.outputs,
        error: handle.error,
        report: handle.report,
        node_down: Vec::new(),
        node_up: Vec::new(),
        replay_events: 0,
        remaps: Vec::new(),
    };
    for event in events.try_iter() {
        match event {
            RunEvent::NodeDown { node, .. } => outcome.node_down.push(node),
            RunEvent::NodeUp { node, .. } => outcome.node_up.push(node),
            RunEvent::ItemReplayed { .. } => outcome.replay_events += 1,
            RunEvent::Remap { plan, .. } => outcome.remaps.push(plan.to),
            _ => {}
        }
    }
    outcome
}

fn assert_zero_loss_and_exclusion(tag: &str, outcome: &ChaosOutcome) {
    assert_eq!(
        outcome.report.completed, ITEMS,
        "{tag}: items lost to the crash"
    );
    assert!(!outcome.report.truncated, "{tag}: run truncated");
    assert_eq!(outcome.error, None, "{tag}: unexpected error");
    // Exactly-once observable output: every item's value exactly once,
    // in order (preserve_order is on by default).
    let expect: Vec<u64> = (0..ITEMS).map(|x| x + 2).collect();
    assert_eq!(outcome.outputs, expect, "{tag}: outputs wrong");
    // The failure transition was observed…
    assert_eq!(outcome.node_down, vec![1], "{tag}: NodeDown not observed");
    // …and some committed re-map excludes the crashed node, with the
    // final mapping (and the routing in force at the end) clean of it.
    assert!(
        outcome
            .remaps
            .iter()
            .any(|m| !m.nodes_used().contains(&n(1))),
        "{tag}: no committed re-map excludes the crashed node ({:?})",
        outcome.remaps
    );
    assert!(
        !outcome.report.final_mapping.nodes_used().contains(&n(1)),
        "{tag}: final mapping still uses the crashed node: {}",
        outcome.report.final_mapping
    );
    // Downtime is accounted to the crashed node only.
    assert_eq!(outcome.report.node_downtime.len(), 3, "{tag}");
    assert!(
        outcome.report.node_downtime[1] > SimDuration::ZERO,
        "{tag}: crashed node shows no downtime"
    );
    assert_eq!(outcome.report.node_downtime[0], SimDuration::ZERO, "{tag}");
}

/// The acceptance-criterion parity test: the identical fault schedule
/// through `RunSession` on both backends — zero lost items, the
/// `NodeDown` transition, and a committed re-map excluding the crashed
/// node on each; outputs item-identical across backends.
#[test]
fn crash_parity_across_backends() {
    let grid = grid3();
    let sim = drive(Backend::Sim(&grid), crash_plan());
    let threads = drive(Backend::Threads(vnodes3()), crash_plan());
    assert_zero_loss_and_exclusion("sim", &sim);
    assert_zero_loss_and_exclusion("threads", &threads);
    assert_eq!(sim.outputs, threads.outputs, "outputs diverge");
    // Both backends rescued stranded items off the dead node and said
    // so, in events and in the report.
    for (tag, o) in [("sim", &sim), ("threads", &threads)] {
        assert!(o.report.replays > 0, "{tag}: no replays recorded");
        assert_eq!(
            o.replay_events as u64, o.report.replays,
            "{tag}: ItemReplayed events disagree with the report"
        );
        let json = o.report.to_json();
        assert!(json.contains("\"replays\":"), "{tag}: {json}");
        assert!(json.contains("\"node_downtime_secs\":["), "{tag}: {json}");
    }
}

/// Satellite: a composed slowdown + outage + crash plan through
/// `RunSession` on both backends — the node survives the outage (down
/// then up), the slowdown degrades without a down transition, and the
/// later crash is still recovered with nothing lost.
#[test]
fn composed_fault_plan_runs_on_both_backends() {
    let plan = || {
        FaultPlan::new()
            .slowdown(n(2), secs(0.0), secs(0.1), 0.5)
            .outage(n(1), secs(0.05), secs(0.12))
            .crash(n(1), secs(0.3))
    };
    let grid = grid3();
    for (tag, outcome) in [
        ("sim", drive(Backend::Sim(&grid), plan())),
        ("threads", drive(Backend::Threads(vnodes3()), plan())),
    ] {
        assert_eq!(outcome.report.completed, ITEMS, "{tag}: items lost");
        assert!(!outcome.report.truncated, "{tag}");
        assert_eq!(outcome.error, None, "{tag}: {:?}", outcome.error);
        let expect: Vec<u64> = (0..ITEMS).map(|x| x + 2).collect();
        assert_eq!(outcome.outputs, expect, "{tag}: outputs wrong");
        // Down for the outage, up at its end, down again for the crash;
        // never a transition for the slowed (not down) node.
        assert_eq!(outcome.node_down, vec![1, 1], "{tag}");
        assert_eq!(outcome.node_up, vec![1], "{tag}");
        // Downtime = outage span + crash tail, charged to node 1 only.
        assert!(
            outcome.report.node_downtime[1] > SimDuration::from_millis(70),
            "{tag}: downtime {:?}",
            outcome.report.node_downtime
        );
        assert_eq!(outcome.report.node_downtime[2], SimDuration::ZERO, "{tag}");
    }
}

/// Satellite: a stateful stage pinned to the crashing node surfaces the
/// typed `StatefulStageLost` error on both backends — the run fails
/// honestly (truncated) instead of forking state or hanging.
#[test]
fn stateful_stage_on_crashed_node_is_a_typed_error() {
    let stateful_scenario = || {
        Pipeline::<u64>::builder()
            .stage_with(StageSpec::balanced("a", STAGE_SECS, 8), |x: u64| {
                spin_for(Duration::from_secs_f64(STAGE_SECS));
                x + 1
            })
            .stateful_stage(StageSpec::balanced("sum", STAGE_SECS, 8).with_state(8), {
                let mut acc = 0u64;
                move |x: u64| {
                    spin_for(Duration::from_secs_f64(STAGE_SECS));
                    acc += x;
                    acc
                }
            })
            .policy(Policy::Periodic {
                interval: SimDuration::from_millis(100),
            })
            .faults(crash_plan())
            .feed(|i| i)
            .build()
            .expect("builds")
    };
    let grid = grid3();
    let run = |pipeline: Pipeline<u64, u64>, backend: Backend<'_>| {
        let mut session = pipeline.spawn(backend, scenario_cfg()).expect("spawns");
        for i in 0..ITEMS {
            session.push(i).unwrap();
        }
        session.drain()
    };
    for (tag, handle) in [
        ("sim", run(stateful_scenario(), Backend::Sim(&grid))),
        (
            "threads",
            run(stateful_scenario(), Backend::Threads(vnodes3())),
        ),
    ] {
        assert_eq!(
            handle.error,
            Some(RunError::StatefulStageLost { stage: 1, node: 1 }),
            "{tag}: wrong error"
        );
        assert!(handle.report.truncated, "{tag}: loss must be admitted");
        assert!(
            handle.report.completed < ITEMS,
            "{tag}: a lost stateful stage cannot deliver everything"
        );
    }
}

/// Satellite: a permanent crash under `Policy::Static` can never be
/// recovered (static never re-maps) — both backends fail fast with the
/// typed error instead of starving forever.
#[test]
fn static_policy_crash_fails_fast_on_both_backends() {
    let static_scenario = || {
        Pipeline::<u64>::builder()
            .stage_with(StageSpec::balanced("a", STAGE_SECS, 8), |x: u64| {
                spin_for(Duration::from_secs_f64(STAGE_SECS));
                x + 1
            })
            .stage_with(StageSpec::balanced("b", STAGE_SECS, 8), |x: u64| {
                spin_for(Duration::from_secs_f64(STAGE_SECS));
                x + 1
            })
            .faults(crash_plan())
            .feed(|i| i)
            .build()
            .expect("builds")
    };
    let grid = grid3();
    let run = |pipeline: Pipeline<u64, u64>, backend: Backend<'_>| {
        let mut session = pipeline.spawn(backend, scenario_cfg()).expect("spawns");
        for i in 0..ITEMS {
            session.push(i).unwrap();
        }
        session.drain()
    };
    for (tag, handle) in [
        ("sim", run(static_scenario(), Backend::Sim(&grid))),
        (
            "threads",
            run(static_scenario(), Backend::Threads(vnodes3())),
        ),
    ] {
        assert_eq!(
            handle.error,
            Some(RunError::NodeLostUnderStatic { node: 1 }),
            "{tag}: wrong error"
        );
        assert!(handle.report.truncated, "{tag}");
    }
}

/// A *finite* outage of a stateful stage's host is recoverable — items
/// park, the node (and its state) comes back — so it must not raise
/// `StatefulStageLost` and nothing may be lost, on either backend.
#[test]
fn stateful_stage_survives_finite_outage_on_both_backends() {
    let outage_scenario = || {
        Pipeline::<u64>::builder()
            .stage_with(StageSpec::balanced("a", STAGE_SECS, 8), |x: u64| {
                spin_for(Duration::from_secs_f64(STAGE_SECS));
                x + 1
            })
            .stateful_stage(StageSpec::balanced("sum", STAGE_SECS, 8).with_state(8), {
                let mut acc = 0u64;
                move |x: u64| {
                    spin_for(Duration::from_secs_f64(STAGE_SECS));
                    acc += x;
                    acc
                }
            })
            .policy(Policy::Periodic {
                interval: SimDuration::from_millis(100),
            })
            .faults(FaultPlan::new().outage(n(1), secs(0.1), secs(0.3)))
            .feed(|i| i)
            .build()
            .expect("builds")
    };
    let grid = grid3();
    let run = |pipeline: Pipeline<u64, u64>, backend: Backend<'_>| {
        let mut session = pipeline.spawn(backend, scenario_cfg()).expect("spawns");
        for i in 0..ITEMS {
            session.push(i).unwrap();
        }
        session.drain()
    };
    for (tag, handle) in [
        ("sim", run(outage_scenario(), Backend::Sim(&grid))),
        (
            "threads",
            run(outage_scenario(), Backend::Threads(vnodes3())),
        ),
    ] {
        assert_eq!(handle.error, None, "{tag}: outage must be recoverable");
        assert_eq!(handle.report.completed, ITEMS, "{tag}: items lost");
        assert!(!handle.report.truncated, "{tag}");
        // The stateful accumulator saw every item exactly once: its
        // largest output is the total sum.
        let max = handle.outputs.iter().max().copied().unwrap();
        let expect: u64 = (0..ITEMS).map(|x| x + 1).sum();
        assert_eq!(max, expect, "{tag}: state lost or duplicated");
    }
}

/// Number of distinct keys the keyed chaos scenarios spread items over.
const KEYS: u64 = 7;

/// The keyed chaos scenario: a stateless feeder plus a *declared*
/// keyed counter (4 shards), launch-mapped so the crash lands on the
/// counter's host and its shards must live-migrate.
fn keyed_scenario(plan: FaultPlan) -> Pipeline<u64, (u64, u64)> {
    Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("a", STAGE_SECS, 8), |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x
        })
        .keyed_stage_with(
            StageSpec::balanced("count", STAGE_SECS, 8).with_keyed_state(4, 64),
            |x: &u64| x % KEYS,
            || 0u64,
            |seen: &mut u64, x: u64| {
                spin_for(Duration::from_secs_f64(STAGE_SECS));
                *seen += 1;
                (x % KEYS, *seen)
            },
        )
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(100),
        })
        .faults(plan)
        .feed(|i| i)
        .build()
        .expect("keyed scenario builds")
}

/// Checks a keyed chaos run for exactly-once observable output and
/// returns the final per-key state (key -> last count observed).
fn keyed_final_state(tag: &str, outputs: &[(u64, u64)]) -> std::collections::BTreeMap<u64, u64> {
    assert_eq!(outputs.len() as u64, ITEMS, "{tag}: output count wrong");
    // Exactly-once per key: for a key with n items, the observed
    // counts must be exactly {1, 2, …, n} — a duplicate, a lost item,
    // or forked state (reset to 1 after migration) all break this.
    let mut per_key: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    for &(k, c) in outputs {
        per_key.entry(k).or_default().push(c);
    }
    let mut finals = std::collections::BTreeMap::new();
    for (k, mut counts) in per_key {
        counts.sort_unstable();
        let expect: Vec<u64> = (1..=counts.len() as u64).collect();
        assert_eq!(
            counts, expect,
            "{tag}: key {k} counts not exactly-once (lost, duplicated, or forked state)"
        );
        finals.insert(k, counts.len() as u64);
    }
    finals
}

/// The tentpole acceptance test: a keyed stateful stage survives
/// *permanent* node death via live shard migration on both backends —
/// zero lost items, exactly-once observable output, identical final
/// per-key state, and `RunReport.migrations > 0` with the moved bytes
/// accounted.
#[test]
fn keyed_state_survives_permanent_crash_on_both_backends() {
    let grid = grid3();
    let run = |backend: Backend<'_>| {
        let mut session = keyed_scenario(crash_plan())
            .spawn(backend, scenario_cfg())
            .expect("spawns");
        for i in 0..ITEMS {
            session.push(i).unwrap();
        }
        session.drain()
    };
    let sim = run(Backend::Sim(&grid));
    let threads = run(Backend::Threads(vnodes3()));
    let mut states = Vec::new();
    for (tag, handle) in [("sim", &sim), ("threads", &threads)] {
        assert_eq!(handle.error, None, "{tag}: keyed state must survive");
        assert_eq!(handle.report.completed, ITEMS, "{tag}: items lost");
        assert!(!handle.report.truncated, "{tag}");
        assert!(
            !handle.report.final_mapping.nodes_used().contains(&n(1)),
            "{tag}: final mapping still uses the crashed node"
        );
        states.push(keyed_final_state(tag, &handle.outputs));
        // The shards moved, and the report says so.
        assert!(
            handle.report.migrations > 0,
            "{tag}: crash recovery must record migrations"
        );
        assert!(
            handle.report.state_bytes_moved > 0,
            "{tag}: declared state bytes must be accounted"
        );
        assert_eq!(
            handle.report.stage_shards,
            vec![0, 4],
            "{tag}: shard map wrong"
        );
        let json = handle.report.to_json();
        assert!(json.contains("\"migrations\":"), "{tag}: {json}");
        assert!(json.contains("\"state_bytes_moved\":"), "{tag}: {json}");
        assert!(json.contains("\"stage_shards\":"), "{tag}: {json}");
    }
    // Identical final per-key state across backends.
    assert_eq!(states[0], states[1], "final keyed state diverges");
    // Every key was actually exercised.
    assert_eq!(states[0].len() as u64, KEYS);
}

/// PR 4 park-and-recover, now with *declared* keyed state: a finite
/// outage of the keyed stage's host parks its pinned items and
/// recovers without abort — and without forking any key's counter —
/// on both backends.
#[test]
fn keyed_state_survives_finite_outage_on_both_backends() {
    let plan = || FaultPlan::new().outage(n(1), secs(0.1), secs(0.3));
    let grid = grid3();
    let run = |backend: Backend<'_>| {
        let mut session = keyed_scenario(plan())
            .spawn(backend, scenario_cfg())
            .expect("spawns");
        for i in 0..ITEMS {
            session.push(i).unwrap();
        }
        session.drain()
    };
    for (tag, handle) in [
        ("sim", run(Backend::Sim(&grid))),
        ("threads", run(Backend::Threads(vnodes3()))),
    ] {
        assert_eq!(handle.error, None, "{tag}: outage must be recoverable");
        assert_eq!(handle.report.completed, ITEMS, "{tag}: items lost");
        assert!(!handle.report.truncated, "{tag}");
        keyed_final_state(tag, &handle.outputs);
    }
}

/// *Declared* exclusive state is the contrast to the opaque typed-error
/// case above: the same permanent crash that raises
/// `StatefulStageLost` for an undeclared closure is survived by an
/// `exclusive_stage` via quiesce-snapshot-resume, on both backends.
#[test]
fn exclusive_state_migrates_where_opaque_state_aborts() {
    let exclusive_scenario = || {
        Pipeline::<u64>::builder()
            .stage_with(StageSpec::balanced("a", STAGE_SECS, 8), |x: u64| {
                spin_for(Duration::from_secs_f64(STAGE_SECS));
                x + 1
            })
            .exclusive_stage_with(
                StageSpec::balanced("sum", STAGE_SECS, 8).with_exclusive_state(8),
                || 0u64,
                |acc: &mut u64, x: u64| {
                    spin_for(Duration::from_secs_f64(STAGE_SECS));
                    *acc += x;
                    *acc
                },
            )
            .policy(Policy::Periodic {
                interval: SimDuration::from_millis(100),
            })
            .faults(crash_plan())
            .feed(|i| i)
            .build()
            .expect("builds")
    };
    let grid = grid3();
    let run = |pipeline: Pipeline<u64, u64>, backend: Backend<'_>| {
        let mut session = pipeline.spawn(backend, scenario_cfg()).expect("spawns");
        for i in 0..ITEMS {
            session.push(i).unwrap();
        }
        session.drain()
    };
    for (tag, handle) in [
        ("sim", run(exclusive_scenario(), Backend::Sim(&grid))),
        (
            "threads",
            run(exclusive_scenario(), Backend::Threads(vnodes3())),
        ),
    ] {
        assert_eq!(handle.error, None, "{tag}: declared state must migrate");
        assert_eq!(handle.report.completed, ITEMS, "{tag}: items lost");
        assert!(!handle.report.truncated, "{tag}");
        // Exactly-once accumulation survived the move: the largest
        // output is the exact total sum.
        let max = handle.outputs.iter().max().copied().unwrap();
        let expect: u64 = (0..ITEMS).map(|x| x + 1).sum();
        assert_eq!(max, expect, "{tag}: state lost or duplicated in transit");
        assert!(handle.report.migrations > 0, "{tag}: no migration recorded");
    }
}

/// A wrong-typed item on the simulation backend is *non-fatal* (marker
/// semantics): the error surfaces, but an adaptive policy's ticks must
/// not exhaust the run and strand the well-typed items in flight.
#[test]
fn sim_type_mismatch_is_nonfatal_under_adaptive_policy() {
    use adapipe::core::pipeline::Pipeline as CorePipeline;
    use adapipe::core::spec::PipelineSpec;
    use adapipe::core::stage::{DynStage, FnStage};
    // Deliberately mis-typed erased assembly: the stage takes u64, the
    // session will push Strings.
    let spec = PipelineSpec::new(vec![StageSpec::balanced("typed", STAGE_SECS, 8)]);
    let stages: Vec<Box<dyn DynStage>> = vec![Box::new(FnStage::new("typed", |x: u64| x + 1))];
    let core: CorePipeline<String, u64> = CorePipeline::from_parts(spec, stages);
    let pipeline = PipelineBuilder::from_pipeline(core)
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(100),
        })
        .build()
        .expect("builds");
    let grid = grid3();
    let mut session = pipeline
        .spawn(
            Backend::Sim(&grid),
            RunConfig {
                items: 50,
                ..RunConfig::default()
            },
        )
        .expect("spawns");
    for i in 0..50u64 {
        session.push(format!("item {i}")).unwrap();
    }
    let handle = session.drain();
    // The error is surfaced…
    assert!(matches!(
        handle.error,
        Some(RunError::StageTypeMismatch { .. })
    ));
    // …but the run itself completed every (marker) item: the adaptive
    // ticks did not exhaust the world.
    assert_eq!(handle.report.completed, 50);
    assert!(!handle.report.truncated);
    assert!(handle.outputs.is_empty(), "mis-typed items yield no output");
}

/// Faults are validated against the backend's node set at spawn, like
/// mappings are.
#[test]
fn fault_plan_outside_node_set_is_rejected() {
    let plan = FaultPlan::new().crash(n(7), secs(1.0));
    let grid = grid3();
    let err = scenario(plan.clone())
        .spawn(Backend::Sim(&grid), scenario_cfg())
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, BuildError::InvalidFault { .. }), "{err}");
    // Same through the RunConfig side and the batch path.
    let err = scenario(FaultPlan::new())
        .run(
            Backend::Threads(vnodes3()),
            RunConfig {
                faults: plan,
                ..scenario_cfg()
            },
        )
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, BuildError::InvalidFault { .. }), "{err}");
}

/// The builder plan and the RunConfig plan compose: a slowdown declared
/// on the pipeline plus a crash declared on the run both happen.
#[test]
fn builder_and_runconfig_fault_plans_merge() {
    let grid = grid3();
    let mut session = scenario(FaultPlan::new().slowdown(n(2), secs(0.0), secs(0.2), 0.5))
        .spawn(
            Backend::Sim(&grid),
            RunConfig {
                faults: crash_plan(),
                ..scenario_cfg()
            },
        )
        .expect("spawns");
    let events = session.events();
    for i in 0..ITEMS {
        session.push(i).unwrap();
    }
    let handle = session.drain();
    assert_eq!(handle.report.completed, ITEMS);
    assert!(events
        .try_iter()
        .any(|e| matches!(e, RunEvent::NodeDown { node: 1, .. })));
    // Downtime reported for the crash even though the crash came from
    // the RunConfig half of the merged plan.
    assert!(handle.report.node_downtime[1] > SimDuration::ZERO);
}

/// Batch `run()` honours the plan too (it is sugar over the session):
/// the simulator's availability windows plus the control-plane recovery
/// complete every item.
#[test]
fn batch_run_survives_crash_on_both_backends() {
    let grid = grid3();
    let sim = scenario(crash_plan())
        .run(Backend::Sim(&grid), scenario_cfg())
        .expect("sim run");
    assert_eq!(sim.report.completed, ITEMS);
    assert!(!sim.report.truncated);
    assert_eq!(sim.error, None);
    assert!(!sim.report.final_mapping.nodes_used().contains(&n(1)));

    let threads = scenario(crash_plan())
        .run(Backend::Threads(vnodes3()), scenario_cfg())
        .expect("threads run");
    assert_eq!(threads.report.completed, ITEMS);
    assert!(!threads.report.truncated);
    assert_eq!(threads.error, None);
    let expect: Vec<u64> = (0..ITEMS).map(|x| x + 2).collect();
    assert_eq!(threads.outputs, expect);
}

/// A finite outage needs no re-map to avoid losing items: the node
/// recovers and the run completes even under a *static* policy (the
/// sim waits out the window; the engine re-deals or waits).
#[test]
fn finite_outage_under_adaptive_policy_loses_nothing() {
    let plan = || FaultPlan::new().outage(n(1), secs(0.1), secs(0.25));
    let grid = grid3();
    for (tag, outcome) in [
        ("sim", drive(Backend::Sim(&grid), plan())),
        ("threads", drive(Backend::Threads(vnodes3()), plan())),
    ] {
        assert_eq!(outcome.report.completed, ITEMS, "{tag}");
        assert_eq!(outcome.error, None, "{tag}");
        assert_eq!(outcome.node_down, vec![1], "{tag}");
        assert_eq!(outcome.node_up, vec![1], "{tag}");
    }
}
