//! Pipeline execution on the discrete-event grid simulator.
//!
//! Items flow through stage instances placed on grid nodes according to
//! the current [`Mapping`]. Each node is a `cores`-server FCFS queue:
//! coalesced stages time-share their host by queueing behind each other,
//! replicated stages receive items round-robin. Task durations integrate
//! the node's availability function exactly, so background load slows
//! service in precisely the way the pattern must detect and react to.
//!
//! This module is the *simulation backend* of the shared adaptive
//! runtime: routing goes through `adapipe-runtime`'s
//! [`RoutingTable`], and sensing/planning/re-mapping through its
//! [`AdaptationLoop`] — the identical code the threaded engine runs.
//! What lives here is only what is physically simulated: event
//! scheduling, queueing, transfers, and the re-mapping *commit*
//! semantics — in-flight tasks finish on their old host; queued items of
//! a moved stage re-home to the new host after the migration cost (state
//! transfer + drain overhead); items already in transit towards an old
//! host are forwarded on arrival. Stateful stages additionally block
//! their new instance until the state arrives.
//!
//! ## Steppable execution
//!
//! The event loop is exposed as a cooperative [`SimStepper`]: a live
//! session injects arrivals one at a time ([`SimStepper::push_at`]),
//! advances the world event by event ([`SimStepper::step`]) or
//! completion by completion ([`SimStepper::next_completion`]), and
//! closes the stream when the caller says so. The batch [`run`] entry
//! point is a thin wrapper — schedule every arrival up front, close,
//! step to completion — that reproduces the pre-stepper event order
//! exactly (arrivals first, then the control events), so batch results
//! are bit-identical to the historical monolithic loop.

use crate::spec::{Next, PipelineSpec};
use adapipe_gridsim::event::EventQueue;
use adapipe_gridsim::fault::FaultPlan;
use adapipe_gridsim::grid::GridSpec;
use adapipe_gridsim::net::LinkQueue;
use adapipe_gridsim::node::NodeId;
use adapipe_gridsim::time::{SimDuration, SimTime};
use adapipe_mapper::mapping::Mapping;
use adapipe_runtime::adapt::{AdaptationLoop, RuntimeConfig};
use adapipe_runtime::backend::{ExecutionBackend, RemapPlan};
use adapipe_runtime::controller::ControllerConfig;
use adapipe_runtime::policy::Policy;
use adapipe_runtime::report::{DeadLetter, ReportBuilder, RunReport};
use adapipe_runtime::routing::{RoutingTable, Selection};
use adapipe_runtime::session::{RunEvent, RunHooks, SessionControl, SessionId};
use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::sync::RwLock;

pub use adapipe_runtime::arrivals::ArrivalProcess;

/// Simulation run configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Stream length.
    pub items: u64,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Adaptation policy.
    pub policy: Policy,
    /// Controller tunables (planner, hysteresis, monitoring window).
    pub controller: ControllerConfig,
    /// Launch mapping; `None` plans one from availability at `t = 0`.
    pub initial_mapping: Option<Mapping>,
    /// How items are dealt among a replicated stage's hosts.
    pub selection: Selection,
    /// Relative magnitude of availability observation noise (0 = clean).
    pub observation_noise: f64,
    /// Seed for the observation noise stream.
    pub noise_seed: u64,
    /// Bucket width of the reported throughput timeline.
    pub timeline_bucket: SimDuration,
    /// Serialise per-direction link transfers (adds contention the
    /// analytic model ignores).
    pub link_contention: bool,
    /// Safety horizon: the run stops (truncated) past this time.
    pub max_sim_time: SimDuration,
    /// Live observation callbacks (invoked at the simulated instant).
    pub hooks: RunHooks,
    /// In-flight steering flags (pause/resume/force re-map) shared with
    /// a live session driving this run.
    pub control: SessionControl,
    /// Scheduled faults: applied to a private copy of the grid's load
    /// models before the run starts (the original `GridSpec` is never
    /// mutated), with down/up transitions driven through the shared
    /// adaptation loop at their exact simulated instants.
    pub faults: FaultPlan,
    /// Static capacity share granted to this session when several
    /// sessions time-share one simulated pool (the cluster facade sets
    /// it from the tenants' quotas via `fair_shares`). Every sensed and
    /// oracle node rate is scaled by this factor, so the session's
    /// planner sees — and its service model uses — only its slice of
    /// the pool. `1.0` (the default) is the single-tenant case.
    pub rate_scale: f64,
    /// The session id stamped onto every emitted [`RunEvent`]
    /// (`SessionId(0)` for standalone runs); a multi-tenant cluster
    /// assigns distinct ids so merged event streams demultiplex.
    pub session: SessionId,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            items: 1_000,
            arrivals: ArrivalProcess::AllAtOnce,
            policy: Policy::Static,
            controller: ControllerConfig::default(),
            initial_mapping: None,
            selection: Selection::RoundRobin,
            observation_noise: 0.0,
            noise_seed: 1,
            timeline_bucket: SimDuration::from_secs(5),
            link_contention: false,
            max_sim_time: SimDuration::from_secs(7 * 24 * 3600),
            hooks: RunHooks::default(),
            control: SessionControl::default(),
            faults: FaultPlan::new(),
            rate_scale: 1.0,
            session: SessionId(0),
        }
    }
}

#[derive(Debug)]
enum Ev {
    /// A contiguous run of items (`first .. first + count`) enters the
    /// system at the source. Session pushes landing at the same
    /// simulated instant coalesce into one event
    /// ([`SimStepper::push_at`]), so a tight push loop schedules O(1)
    /// events instead of one per item; the handler replays the items in
    /// sequence order, reproducing the per-item event order exactly.
    Arrive { first: u64, count: u64 },
    /// Item lands at a stage instance (stage == Ns means "delivered").
    StageIn {
        item: u64,
        stage: usize,
        node: usize,
    },
    /// A task finished on a node core.
    Done {
        item: u64,
        stage: usize,
        node: usize,
        started: SimTime,
    },
    /// A queued item re-homed by a re-mapping lands at its stage's new
    /// host. Distinct from `StageIn` because a re-homed *merge* task
    /// has already consumed its branch arrivals — it must re-enter the
    /// queue directly, not the join count.
    Rehome {
        item: u64,
        stage: usize,
        node: usize,
    },
    /// Planning tick.
    Tick,
    /// Availability observation (scheduled `samples_per_interval` times
    /// per planning tick).
    Sample,
    /// Wake a node whose instance became ready after migration.
    Retry { node: usize },
    /// A fault-plan transition (node down/up) is due; the next one is
    /// chained from the handler.
    Fault,
}

/// Runs `spec` on `grid` under `cfg` and reports the outcome.
///
/// This is the simulation *backend* entry point; applications should
/// prefer the unified `adapipe::api::Pipeline` builder, which delegates
/// here via `Backend::Sim`. Batch execution is sugar over the
/// [`SimStepper`]: every arrival is injected up front, the stream is
/// closed, and the stepper runs to completion — the same event order
/// the historical monolithic loop produced.
pub fn run(grid: &GridSpec, spec: &PipelineSpec, cfg: &SimConfig) -> RunReport {
    let mut stepper = SimStepper::new(grid, spec.clone(), cfg);
    for &at in &cfg.arrivals.schedule(cfg.items) {
        stepper.push_at(at);
    }
    stepper.close();
    while !stepper.all_done() && stepper.step() {}
    stepper.finish()
}

/// The resolved resilience outcome of one item, computed by the caller
/// (the facade runs the real stage closures at push time) and injected
/// via [`SimStepper::push_at_with_fate`]. The world models items by
/// metadata only, so it cannot *discover* failures — but given the
/// fate, it charges their full cost: each failed attempt re-runs the
/// stage's service time in place, separated by the policy's backoff
/// schedule, and a poisoned item diverts to the dead-letter channel at
/// the stage that exhausted its budget instead of reaching the sink.
#[derive(Clone, Debug, Default)]
pub struct ItemFate {
    /// Failed attempts per stage, sparse: `(stage, failed)` with
    /// `failed ≥ 1`. Stages not listed processed the item cleanly.
    pub failed: Vec<(usize, u32)>,
    /// Terminal diversion: the stage that gave up on the item and the
    /// error carried into the dead-letter record. `None` for items
    /// that reach the sink (possibly after retries).
    pub dead: Option<(usize, String)>,
}

impl ItemFate {
    /// True when the item processed cleanly everywhere — the common
    /// case, kept out of the fate map entirely.
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty() && self.dead.is_none()
    }
}

/// The physically simulated world: event queue, node queues, transfers.
/// Implements [`ExecutionBackend`] so the shared [`AdaptationLoop`] can
/// sense it and commit re-mappings into it.
struct SimWorld<'a> {
    /// The grid, with the run's fault plan already applied to the load
    /// models (owned copy when a plan is present; the caller's grid is
    /// never mutated).
    grid: Cow<'a, GridSpec>,
    spec: PipelineSpec,
    ns: usize,
    horizon: SimTime,
    link_contention: bool,
    /// Capacity share of the pool granted to this session
    /// ([`SimConfig::rate_scale`]): stretches every service time by its
    /// inverse and scales every sensed/oracle rate, so co-tenant
    /// sessions time-sharing one simulated pool each see and get only
    /// their slice.
    rate_scale: f64,
    /// The session id stamped onto events emitted by the world itself
    /// (replays); the adaptation loop stamps its own.
    session: SessionId,
    /// Per-node down flags mirroring the fault tracker (set through
    /// [`ExecutionBackend::on_node_down`]), used to tell a *replay* —
    /// an item rescued off a dead host — from an ordinary migration
    /// re-home.
    down: Vec<bool>,
    /// Event bus for replay notifications.
    hooks: RunHooks,

    events: EventQueue<Ev>,
    now: SimTime,
    queues: HashMap<(usize, usize), VecDeque<u64>>,
    ready_at: HashMap<(usize, usize), SimTime>,
    free_cores: Vec<u32>,
    rr_exec: Vec<usize>,
    link_q: HashMap<(usize, usize), LinkQueue>,

    /// Arrival instant of every *in-flight* item (removed at
    /// completion), so an open-ended session's footprint tracks the
    /// in-flight window, not the stream length.
    arrival_time: HashMap<u64, SimTime>,
    /// Per-stage in-edge bytes, precomputed once from the stage graph
    /// ([`crate::spec::StageGraph::feed_bytes`]) — hot-path forwarding
    /// must not walk the graph per item.
    bytes_into: Vec<u64>,
    /// The pipeline's entry stage(s), precomputed once — arrivals must
    /// not rebuild the fan-out entry list per item.
    entry_stages: Vec<usize>,
    /// Branch entry stages per parallel block, precomputed once —
    /// fan-out dispatch must not allocate a fresh `Vec` per item.
    block_entries: Vec<Vec<usize>>,
    /// Branch outputs that reached a merge stage so far, per
    /// `(block, item)`; the merge task is enqueued when the count hits
    /// the block's branch count. Entries live only while a join is in
    /// flight.
    join_arrived: HashMap<(usize, u64), usize>,
    /// The merge replica chosen for an item's join, fixed at the first
    /// branch exit so every branch output of the item converges on one
    /// host.
    merge_dest: HashMap<(usize, u64), usize>,
    /// Resolved resilience outcomes for items that did *not* process
    /// cleanly ([`SimStepper::push_at_with_fate`]); entries are removed
    /// when the item settles. Clean items never enter the map.
    fates: HashMap<u64, ItemFate>,
    node_busy: Vec<SimDuration>,
    report: ReportBuilder,
    stage_metrics: crate::metrics::StageMetrics,
    /// Completion log (item indices in completion order) a live session
    /// drains through [`SimStepper::next_completion`]. Comparable in
    /// footprint to the per-item latency samples the report keeps.
    completed_log: VecDeque<u64>,
}

/// The cooperative, session-driven form of the simulation backend: the
/// caller injects arrivals and advances the world explicitly, instead of
/// handing the whole schedule over and blocking until it drains.
///
/// Lifecycle: [`SimStepper::push_at`] any number of items (their
/// simulated arrival instants must be non-decreasing against the
/// stepper's clock — past times clamp to *now*), interleaved with
/// [`SimStepper::step`] / [`SimStepper::next_completion`]; then
/// [`SimStepper::close`] to declare the stream complete and
/// [`SimStepper::finish`] for the standard [`RunReport`].
///
/// Determinism: a given sequence of `push_at`/`step` calls replays
/// exactly (the world is a pure function of its event insertions). The
/// batch [`run`] wrapper inserts all arrivals before the first step, so
/// it reproduces the historical event order bit for bit.
pub struct SimStepper<'a> {
    world: SimWorld<'a>,
    routing: RwLock<RoutingTable>,
    aloop: AdaptationLoop,
    /// Tick/Sample events are scheduled lazily at the first step so
    /// batch arrivals keep their historical head position in the event
    /// order.
    control_scheduled: bool,
    /// Coalesced arrival run not yet in the event queue:
    /// `(instant, first item, count)`. Contiguous same-instant pushes
    /// extend it in place; it flushes as one `Ev::Arrive` at the next
    /// step (before any lazily scheduled control event, preserving the
    /// historical arrivals-first insertion order).
    pending_arrival: Option<(SimTime, u64, u64)>,
    pushed: u64,
    closed: bool,
    /// Set once the event queue starved or the horizon was crossed:
    /// no further event will ever fire.
    exhausted: bool,
}

impl<'a> SimStepper<'a> {
    /// Creates a steppable world for `spec` on `grid` under `cfg`, with
    /// no arrivals scheduled. `cfg.items` is only the planning hint for
    /// remaining-work amortisation (the real stream length is declared
    /// by [`SimStepper::close`]); `cfg.arrivals` is ignored — arrival
    /// instants come from `push_at`.
    pub fn new(grid: &'a GridSpec, spec: PipelineSpec, cfg: &SimConfig) -> Self {
        let profile = spec.profile();
        profile.validate();
        // Fault physics: the plan rewrites the load models of a private
        // copy of the grid, so availability — and therefore every
        // integrated service time — reflects the scheduled degradation
        // exactly, while the caller's grid stays untouched.
        let grid: Cow<'a, GridSpec> = if cfg.faults.is_empty() {
            Cow::Borrowed(grid)
        } else {
            let mut faulted = grid.clone();
            cfg.faults.apply(&mut faulted);
            Cow::Owned(faulted)
        };
        let np = grid.len();
        let speeds: Vec<f64> = grid.node_ids().map(|id| grid.node(id).spec.speed).collect();

        assert!(
            cfg.rate_scale.is_finite() && cfg.rate_scale > 0.0 && cfg.rate_scale <= 1.0,
            "rate_scale must lie in (0, 1], got {}",
            cfg.rate_scale
        );
        // Launch mapping: supplied, or planned from availability at t=0
        // (what a launch-time scheduler with fresh information would do).
        // A fractional pool share scales the planning rates too, so the
        // launch plan reflects the capacity the session will really get.
        let launch_rates: Vec<f64> = grid
            .rates_at(SimTime::ZERO)
            .iter()
            .map(|r| r * cfg.rate_scale)
            .collect();
        let mapping = cfg.initial_mapping.clone().unwrap_or_else(|| {
            adapipe_mapper::search::plan(
                &profile,
                &launch_rates,
                grid.topology(),
                &cfg.controller.planner,
            )
            .mapping
        });
        assert_eq!(mapping.len(), spec.len(), "mapping must cover every stage");
        for node in mapping.nodes_used() {
            assert!(
                node.index() < np,
                "mapping uses node {node} outside the grid"
            );
        }

        let runtime_cfg = RuntimeConfig {
            policy: cfg.policy,
            controller: cfg.controller.clone(),
            profile,
            topology: grid.topology().clone(),
            speeds,
            state_bytes: spec.stages.iter().map(|s| s.state_bytes).collect(),
            stateless: spec.stages.iter().map(|s| s.state.replicable()).collect(),
            state_access: spec.stages.iter().map(|s| s.state).collect(),
            faults: cfg.faults.clone(),
            total_items: cfg.items,
            observation_noise: cfg.observation_noise,
            noise_seed: cfg.noise_seed,
            hooks: cfg.hooks.clone(),
            control: cfg.control.clone(),
            session: cfg.session,
        };
        let aloop = AdaptationLoop::new(runtime_cfg, &mapping, &launch_rates);

        let ns = spec.len();
        let stage_shards: Vec<usize> = spec.stages.iter().map(|s| s.state.shards()).collect();
        let mut report = ReportBuilder::new(cfg.timeline_bucket, u64::MAX);
        if !cfg.faults.is_empty() {
            report.set_faults(cfg.faults.clone(), np);
        }
        report.set_stage_shards(stage_shards.clone());
        let free_cores = grid.node_ids().map(|id| grid.node(id).spec.cores).collect();
        let boundary: Vec<u64> = std::iter::once(spec.input_bytes)
            .chain(spec.stages.iter().map(|s| s.out_bytes))
            .collect();
        let bytes_into = (0..ns)
            .map(|s| spec.graph.feed_bytes(s, &boundary))
            .collect();
        let entry_stages = match spec.graph.entry() {
            Next::Stage(stage) => vec![stage],
            Next::FanOut { block } => spec.graph.branch_entries(block),
            _ => unreachable!("pipelines enter at a stage or a fan-out"),
        };
        let block_entries = (0..spec.graph.blocks())
            .map(|b| spec.graph.branch_entries(b))
            .collect();
        let world = SimWorld {
            grid,
            ns,
            spec,
            horizon: SimTime::ZERO + cfg.max_sim_time,
            link_contention: cfg.link_contention,
            rate_scale: cfg.rate_scale,
            session: cfg.session,
            down: vec![false; np],
            hooks: cfg.hooks.clone(),
            events: EventQueue::new(),
            now: SimTime::ZERO,
            queues: HashMap::new(),
            ready_at: HashMap::new(),
            free_cores,
            rr_exec: vec![0; np],
            link_q: HashMap::new(),
            arrival_time: HashMap::new(),
            bytes_into,
            entry_stages,
            block_entries,
            join_arrived: HashMap::new(),
            merge_dest: HashMap::new(),
            fates: HashMap::new(),
            node_busy: vec![SimDuration::ZERO; np],
            // The stream length is open until `close()`.
            report,
            stage_metrics: crate::metrics::StageMetrics::new(ns),
            completed_log: VecDeque::new(),
        };

        SimStepper {
            world,
            routing: RwLock::new(
                RoutingTable::with_selection(mapping, cfg.selection, np)
                    .with_stage_shards(stage_shards),
            ),
            aloop,
            control_scheduled: false,
            pending_arrival: None,
            pushed: 0,
            closed: false,
            exhausted: false,
        }
    }

    /// The stepper's current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.events.now()
    }

    /// Items injected so far.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Items that reached the sink so far.
    pub fn completed(&self) -> u64 {
        self.world.report.completed()
    }

    /// True once the stream is closed and every pushed item completed.
    pub fn all_done(&self) -> bool {
        self.world.report.all_done()
    }

    /// True once no further event can ever fire (queue starved or the
    /// safety horizon was crossed) — the run is over, complete or not.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Injects the next item, arriving at simulated instant `at`
    /// (clamped to the stepper's current time — the simulator cannot
    /// rewrite history). Returns the item's sequence number.
    ///
    /// # Panics
    /// Panics if the stream was already closed.
    pub fn push_at(&mut self, at: SimTime) -> u64 {
        assert!(!self.closed, "cannot push into a closed stream");
        let item = self.pushed;
        self.pushed += 1;
        let at = at.max(self.world.events.now());
        match self.pending_arrival {
            // Contiguous push at the same instant: extend the pending
            // run instead of scheduling another event.
            Some((t, _, ref mut count)) if t == at => *count += 1,
            _ => {
                self.flush_arrivals();
                self.pending_arrival = Some((at, item, 1));
            }
        }
        item
    }

    /// [`SimStepper::push_at`], annotated with the item's resolved
    /// resilience outcome. The caller (who ran the real stage closures)
    /// reports which stages needed retries and whether the item
    /// ultimately dead-lettered; the world charges the retries' service
    /// time and backoff on the mapped hosts and diverts a poisoned item
    /// at the stage that exhausted its budget. A clean fate degenerates
    /// to a plain push.
    pub fn push_at_with_fate(&mut self, at: SimTime, fate: ItemFate) -> u64 {
        let item = self.push_at(at);
        if !fate.is_clean() {
            self.world.fates.insert(item, fate);
        }
        item
    }

    /// Items settled so far: completions plus dead-lettered items.
    pub fn accounted(&self) -> u64 {
        self.world.report.accounted()
    }

    /// Items diverted to the dead-letter channel so far.
    pub fn dead_letters(&self) -> u64 {
        self.world.report.dead_letters()
    }

    /// Moves the coalesced arrival run (if any) into the event queue.
    fn flush_arrivals(&mut self) {
        if let Some((at, first, count)) = self.pending_arrival.take() {
            self.world.events.schedule(at, Ev::Arrive { first, count });
        }
    }

    /// Declares the input stream complete: no further `push_at`, and
    /// the expected item count becomes the number pushed (so
    /// [`SimStepper::all_done`] and the report's `truncated` flag mean
    /// what they say).
    pub fn close(&mut self) {
        self.closed = true;
        self.world.report.set_expected(self.pushed);
    }

    /// Processes one event. Returns `false` — permanently — once the
    /// event queue is starved or the next event lies beyond the safety
    /// horizon.
    pub fn step(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        // Buffered arrivals enter the queue first: they were pushed
        // before this step, so they precede any control event scheduled
        // below (same tie-break order as unbatched per-push scheduling).
        self.flush_arrivals();
        // Control events enter the queue lazily at the first step so
        // arrivals injected before any stepping (the batch wrapper)
        // keep their historical head position in the event order.
        if !self.control_scheduled {
            self.control_scheduled = true;
            if let Some(interval) = self.aloop.interval() {
                let now = self.world.events.now();
                self.world.events.schedule(now + interval, Ev::Tick);
                let sample_dt = self.aloop.sample_dt().expect("interval implies samples");
                self.world.events.schedule(now + sample_dt, Ev::Sample);
            }
            // Fault transitions fire at their exact simulated instants,
            // chained one event at a time (independent of the policy:
            // even a static run marks nodes down and surfaces errors).
            if let Some(at) = self.aloop.next_fault_at() {
                self.world.events.schedule(at, Ev::Fault);
            }
        }
        let Some((now, ev)) = self.world.events.pop() else {
            self.exhausted = true; // starved: the report stays truncated
            return false;
        };
        if now > self.world.horizon {
            self.exhausted = true;
            return false;
        }
        self.world.now = now;
        match ev {
            Ev::Arrive { first, count } => {
                let table = self.routing.read().expect("routing lock poisoned");
                for item in first..first + count {
                    self.world.on_arrive(&table, item, now);
                }
            }
            Ev::StageIn { item, stage, node } => {
                let table = self.routing.read().expect("routing lock poisoned");
                self.world.on_stage_in(&table, item, stage, node, now);
            }
            Ev::Done {
                item,
                stage,
                node,
                started,
            } => {
                let table = self.routing.read().expect("routing lock poisoned");
                self.world.on_done(&table, item, stage, node, started, now);
            }
            Ev::Rehome { item, stage, node } => {
                let table = self.routing.read().expect("routing lock poisoned");
                self.world
                    .stage_arrival(&table, item, stage, node, now, true);
            }
            Ev::Retry { node } => {
                let table = self.routing.read().expect("routing lock poisoned");
                self.world.try_dispatch(&table, node, now);
            }
            Ev::Tick => {
                let _ = self.aloop.tick(&mut self.world, &self.routing);
                // Only a *fatal* fault exhausts the run — the error slot
                // alone may carry non-fatal errors (a wrong-typed push
                // completes as a marker and the stream continues).
                if self.aloop.is_fatal() {
                    self.exhausted = true; // nothing can progress
                    return true;
                }
                if !self.world.report.all_done() {
                    let interval = self.aloop.interval().expect("tick implies interval");
                    self.world.events.schedule(now + interval, Ev::Tick);
                }
            }
            Ev::Sample => {
                self.aloop.sample(&self.world);
                if !self.world.report.all_done() {
                    let sample_dt = self.aloop.sample_dt().expect("sample implies interval");
                    self.world.events.schedule(now + sample_dt, Ev::Sample);
                }
            }
            Ev::Fault => {
                let outcome = self.aloop.poll_faults(&mut self.world, &self.routing);
                if outcome.fatal {
                    self.exhausted = true; // error recorded on `control`
                    return true;
                }
                if let Some(at) = self.aloop.next_fault_at() {
                    self.world.events.schedule(at, Ev::Fault);
                }
            }
        }
        true
    }

    /// The simulated instant of the next event that would fire — the
    /// earlier of the event queue's head and any buffered arrival run —
    /// or `None` when nothing is pending. A cluster interleaving
    /// several steppers over one pool steps whichever session's next
    /// event is earliest, giving one coherent merged event clock.
    ///
    /// Control events (ticks, samples, faults) are scheduled lazily at
    /// the first [`SimStepper::step`], so before any stepping this
    /// reflects arrivals only.
    pub fn next_event_at(&self) -> Option<SimTime> {
        let queued = self.world.events.peek_time();
        let pending = self.pending_arrival.map(|(at, _, _)| at);
        match (queued, pending) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pops the oldest not-yet-collected completion, without advancing
    /// the world — or `None` when every completion so far has been
    /// collected. The cluster drains completions after stepping the
    /// merged event clock; a single-tenant session should prefer
    /// [`SimStepper::next_completion`], which steps as needed.
    pub fn pop_completion(&mut self) -> Option<u64> {
        self.world.completed_log.pop_front()
    }

    /// Advances the world until one more item settles — completing at
    /// the sink or diverting to the dead-letter channel — returning its
    /// sequence number, or `None` when nothing further can settle (no
    /// item in flight, queue starved, or horizon crossed). Whether a
    /// drained sequence number carries an output is the caller's to
    /// know (the facade checks its output map).
    pub fn next_completion(&mut self) -> Option<u64> {
        loop {
            if let Some(item) = self.world.completed_log.pop_front() {
                return Some(item);
            }
            if self.accounted() >= self.pushed {
                return None; // nothing in flight: stepping cannot help
            }
            if !self.step() {
                return None;
            }
        }
    }

    /// Consumes the stepper and assembles the standard [`RunReport`].
    /// An unclosed stream is settled first (expected = pushed), so an
    /// aborted session reports `truncated` iff items were lost.
    pub fn finish(mut self) -> RunReport {
        if !self.closed {
            self.close();
        }
        let SimStepper {
            world,
            routing,
            aloop,
            ..
        } = self;
        let (migrations, state_bytes_moved) = aloop.migration_totals();
        let (adaptations, planning_cycles) = aloop.finish();
        let final_mapping = routing
            .into_inner()
            .expect("routing lock poisoned")
            .mapping()
            .clone();
        let SimWorld {
            mut report,
            node_busy,
            stage_metrics,
            ..
        } = world;
        report.set_migrations(migrations, state_bytes_moved);
        report.finish(
            final_mapping,
            adaptations,
            planning_cycles,
            node_busy,
            stage_metrics,
        )
    }
}

impl SimWorld<'_> {
    // --- event handlers -------------------------------------------------

    fn on_arrive(&mut self, routing: &RoutingTable, item: u64, now: SimTime) {
        self.arrival_time.insert(item, now);
        for i in 0..self.entry_stages.len() {
            let stage = self.entry_stages[i];
            let dest = self.route_item(routing, stage, item);
            let at = match self.spec.source {
                Some(src) => self.transfer(src.index(), dest, self.spec.input_bytes, now),
                None => now,
            };
            self.events.schedule(
                at,
                Ev::StageIn {
                    item,
                    stage,
                    node: dest,
                },
            );
        }
    }

    fn on_stage_in(
        &mut self,
        routing: &RoutingTable,
        item: u64,
        stage: usize,
        node: usize,
        now: SimTime,
    ) {
        self.stage_arrival(routing, item, stage, node, now, false);
    }

    /// A stage arrival: a fresh `StageIn` (`rejoined = false`) counts
    /// toward a merge stage's join; a `Rehome` (`rejoined = true`) is a
    /// re-mapped queue item whose join already completed and re-enters
    /// the queue directly.
    fn stage_arrival(
        &mut self,
        routing: &RoutingTable,
        item: u64,
        stage: usize,
        node: usize,
        now: SimTime,
        rejoined: bool,
    ) {
        if stage == self.ns {
            self.record_completion(item, now);
            return;
        }
        if !routing.contains(stage, NodeId(node)) {
            // The stage moved while this item was in transit: forward
            // it, preserving its joined-ness.
            let dest = self.route_item(routing, stage, item);
            let bytes = self.boundary_bytes_into(stage);
            let at = self.transfer(node, dest, bytes, now);
            let ev = if rejoined {
                Ev::Rehome {
                    item,
                    stage,
                    node: dest,
                }
            } else {
                Ev::StageIn {
                    item,
                    stage,
                    node: dest,
                }
            };
            self.events.schedule(at, ev);
            return;
        }
        if !rejoined {
            if let Some(block) = self.spec.graph.merge_block_of(stage) {
                // A merge stage serves one *joined* task per item: count
                // the branch outputs as they land and enqueue only the
                // last one.
                let needed = self.spec.graph.branch_count(block);
                let count = self.join_arrived.entry((block, item)).or_insert(0);
                *count += 1;
                if *count < needed {
                    return;
                }
                self.join_arrived.remove(&(block, item));
                self.merge_dest.remove(&(block, item));
            }
        }
        self.queues
            .entry((stage, node))
            .or_default()
            .push_back(item);
        self.try_dispatch(routing, node, now);
    }

    fn on_done(
        &mut self,
        routing: &RoutingTable,
        item: u64,
        stage: usize,
        node: usize,
        started: SimTime,
        now: SimTime,
    ) {
        self.free_cores[node] += 1;
        self.node_busy[node] = self.node_busy[node].saturating_add(now - started);
        self.stage_metrics
            .record(stage, now - started, self.spec.draw_work(stage, item));
        // Resilience accounting for the hop: retries consumed, timeout
        // checks, the opt-in per-hop trace — and, terminally, the
        // dead-letter diversion for an item that exhausted this stage's
        // budget (it settles here and never reaches the sink).
        let failed = self.failed_attempts(stage, item).unwrap_or(0);
        let policy = &self.spec.stages[stage].resilience;
        if failed > 0 {
            self.report.record_retries(u64::from(failed));
        }
        if let Some(bound) = policy.timeout {
            // All attempts of a hop share one simulated duration: the
            // service span net of backoff, split evenly across them.
            let mut span = (now - started).as_secs_f64();
            for retry in 1..=failed {
                span -= policy.backoff_delay(retry).as_secs_f64();
            }
            if span / f64::from(failed + 1) > bound.as_secs_f64() {
                self.report.record_timeouts(u64::from(failed + 1));
            }
        }
        if policy.trace {
            self.hooks.events.emit(RunEvent::ItemTrace {
                session: self.session,
                seq: item,
                stage,
                attempts: failed + 1,
                at: now,
            });
        }
        let diverted = self
            .fates
            .get(&item)
            .and_then(|f| f.dead.as_ref())
            .is_some_and(|&(s, _)| s == stage);
        if diverted {
            let fate = self.fates.remove(&item).expect("diverted item has a fate");
            let (_, reason) = fate.dead.expect("diverted fate carries a reason");
            self.arrival_time.remove(&item);
            self.report.record_dead_letter(DeadLetter {
                seq: item,
                stage,
                attempts: failed + 1,
                reason,
            });
            self.hooks.events.emit(RunEvent::ItemDeadLettered {
                session: self.session,
                seq: item,
                stage,
                attempts: failed + 1,
            });
            // A diverted item is settled: the session drains it through
            // the completion log (with no output to deliver) so ordered
            // delivery and `all_done` stay coherent.
            self.completed_log.push_back(item);
            self.try_dispatch(routing, node, now);
            return;
        }
        // Route onward along the stage graph.
        let out_bytes = self.spec.stages[stage].out_bytes;
        match self.spec.graph.after(stage) {
            Next::Done => match self.spec.sink {
                Some(sink) => {
                    let at = self.transfer(node, sink.index(), out_bytes, now);
                    self.events.schedule(
                        at,
                        Ev::StageIn {
                            item,
                            stage: self.ns,
                            node: sink.index(),
                        },
                    );
                }
                None => self.record_completion(item, now),
            },
            Next::Stage(next) => {
                let dest = self.route_item(routing, next, item);
                let at = self.transfer(node, dest, out_bytes, now);
                self.events.schedule(
                    at,
                    Ev::StageIn {
                        item,
                        stage: next,
                        node: dest,
                    },
                );
            }
            Next::FanOut { block } => {
                // One copy per branch, dispatched in branch order.
                for i in 0..self.block_entries[block].len() {
                    let entry = self.block_entries[block][i];
                    let dest = self.route_item(routing, entry, item);
                    let at = self.transfer(node, dest, out_bytes, now);
                    self.events.schedule(
                        at,
                        Ev::StageIn {
                            item,
                            stage: entry,
                            node: dest,
                        },
                    );
                }
            }
            Next::Join { block, .. } => {
                // Every branch output of an item converges on one merge
                // replica, chosen at the first branch exit. A pin that
                // went stale — its host vacated by a re-map or marked
                // down — is re-routed (the join count is keyed by item,
                // not host, so arrivals still pair up).
                let merge = self.spec.graph.merge_of(block);
                let dest = match self.merge_dest.get(&(block, item)) {
                    Some(&d)
                        if routing.contains(merge, NodeId(d)) && !routing.is_down(NodeId(d)) =>
                    {
                        d
                    }
                    _ => {
                        let d = self.route_item(routing, merge, item);
                        self.merge_dest.insert((block, item), d);
                        d
                    }
                };
                let at = self.transfer(node, dest, out_bytes, now);
                self.events.schedule(
                    at,
                    Ev::StageIn {
                        item,
                        stage: merge,
                        node: dest,
                    },
                );
            }
        }
        self.try_dispatch(routing, node, now);
    }

    // --- mechanics --------------------------------------------------------

    /// Destination replica for `item` at `stage`. A stage with declared
    /// keyed state routes by key hash so every item of a key lands on
    /// its shard's owner (the simulator models items by sequence number,
    /// which stands in for the key hash — the real hash only exists on
    /// the executing backend); every other stage follows the configured
    /// selection policy (least-loaded probes the simulated queue
    /// depths).
    fn route_item(&self, routing: &RoutingTable, stage: usize, item: u64) -> usize {
        if self.spec.stages[stage].state.shards() > 0 {
            return routing.route_keyed(stage, item).index();
        }
        routing
            .route_with_load(stage, |n| {
                self.queues.get(&(stage, n.index())).map_or(0, |q| q.len())
            })
            .index()
    }

    /// Bytes entering `stage` along its graph in-edge. A merge stage's
    /// in-transit payload is one branch output; the largest branch's
    /// size is the conservative bound used when forwarding it.
    fn boundary_bytes_into(&self, stage: usize) -> u64 {
        self.bytes_into[stage]
    }

    /// Arrival time of `bytes` moved `from → to` starting at `now`.
    fn transfer(&mut self, from: usize, to: usize, bytes: u64, now: SimTime) -> SimTime {
        let d = self
            .grid
            .topology()
            .transfer_time(NodeId(from), NodeId(to), bytes);
        if self.link_contention && from != to {
            self.link_q.entry((from, to)).or_default().schedule(now, d)
        } else {
            now + d
        }
    }

    /// Starts as many queued tasks as the node has free cores.
    fn try_dispatch(&mut self, routing: &RoutingTable, node: usize, now: SimTime) {
        while self.free_cores[node] > 0 {
            let Some(stage) = self.pick_ready_stage(routing, node, now) else {
                break;
            };
            let item = self
                .queues
                .get_mut(&(stage, node))
                .expect("picked stage has a queue")
                .pop_front()
                .expect("picked stage queue is non-empty");
            // A fractional pool share stretches service: the node spends
            // `1/rate_scale` of wall time per unit of this session's work.
            let mut work = self.spec.draw_work(stage, item) / self.rate_scale;
            let mut backoff = SimDuration::ZERO;
            if let Some(failed) = self.failed_attempts(stage, item) {
                // Each failed attempt re-runs the stage in place,
                // separated by the policy's backoff schedule; the core
                // is held throughout, matching the threaded engine's
                // in-place retry loop.
                let policy = &self.spec.stages[stage].resilience;
                work *= f64::from(failed + 1);
                for retry in 1..=failed {
                    backoff = backoff.saturating_add(policy.backoff_delay(retry));
                }
            }
            let done_at = self.grid.node(NodeId(node)).completion_time(now, work) + backoff;
            if done_at > self.horizon {
                // The node cannot finish this task within the run horizon
                // (it is dead or as good as dead): park the item; only a
                // re-mapping can rescue this queue.
                self.queues
                    .get_mut(&(stage, node))
                    .expect("queue exists")
                    .push_front(item);
                break;
            }
            self.free_cores[node] -= 1;
            self.on_dispatch(stage, node, item);
            self.events.schedule(
                done_at,
                Ev::Done {
                    item,
                    stage,
                    node,
                    started: now,
                },
            );
        }
    }

    /// The next stage hosted on `node` with a ready, non-empty queue,
    /// scanned round-robin for fairness among coalesced stages.
    fn pick_ready_stage(
        &mut self,
        routing: &RoutingTable,
        node: usize,
        now: SimTime,
    ) -> Option<usize> {
        let ns = self.ns;
        let start = self.rr_exec[node];
        for off in 0..ns {
            let stage = (start + off) % ns;
            if !routing.contains(stage, NodeId(node)) {
                continue;
            }
            if self
                .ready_at
                .get(&(stage, node))
                .is_some_and(|&ready| ready > now)
            {
                continue;
            }
            if self
                .queues
                .get(&(stage, node))
                .is_some_and(|q| !q.is_empty())
            {
                self.rr_exec[node] = (stage + 1) % ns;
                return Some(stage);
            }
        }
        None
    }

    /// Failed-attempt count for `(stage, item)` from the item's fate,
    /// if any — `None` for the common clean hop.
    fn failed_attempts(&self, stage: usize, item: u64) -> Option<u32> {
        let fate = self.fates.get(&item)?;
        fate.failed
            .iter()
            .find(|&&(s, _)| s == stage)
            .map(|&(_, f)| f)
    }

    fn record_completion(&mut self, item: u64, now: SimTime) {
        let arrived = self.arrival_time.remove(&item).unwrap_or(SimTime::ZERO);
        let latency = now.saturating_since(arrived);
        self.report.record_completion(now, latency);
        self.fates.remove(&item);
        self.completed_log.push_back(item);
    }
}

impl ExecutionBackend for SimWorld<'_> {
    fn node_count(&self) -> usize {
        self.grid.len()
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn mean_availability(&self, node: usize, from: SimTime, to: SimTime) -> f64 {
        self.grid
            .node(NodeId(node))
            .load
            .mean_availability(from, to)
            * self.rate_scale
    }

    fn completed(&self) -> u64 {
        self.report.completed()
    }

    fn oracle_rates(&self, from: SimTime, to: SimTime) -> Vec<f64> {
        (0..self.grid.len())
            .map(|i| {
                let node = self.grid.node(NodeId(i));
                node.spec.speed * node.load.mean_availability(from, to) * self.rate_scale
            })
            .collect()
    }

    /// Applies an accepted re-mapping: queued items of moved stages
    /// re-home to the new hosts after the migration cost; stateful stages
    /// block their new instance until state arrives. Items rescued off a
    /// *down* host additionally count as replays (at-least-once
    /// re-delivery after a node loss) and announce themselves on the
    /// event bus.
    fn commit_remap(&mut self, plan: &RemapPlan) {
        let ready = plan.ready_at;
        for &stage in &plan.moved {
            let new_placement = plan.to.placement(stage);
            // Drain queues on hosts that no longer serve this stage.
            let mut orphans: Vec<(u64, usize)> = Vec::new();
            for host in plan.from.placement(stage).hosts() {
                if !new_placement.contains(*host) {
                    if let Some(q) = self.queues.get_mut(&(stage, host.index())) {
                        orphans.extend(q.drain(..).map(|item| (item, host.index())));
                    }
                }
            }
            // Re-home orphans over the new hosts — keyed stages pin
            // each item to its shard's new owner, everything else goes
            // round-robin; they arrive once migration completes.
            // `Rehome`, not `StageIn`: a queued item at a merge stage
            // has already consumed its branch arrivals and must
            // re-enter the queue directly, not be counted as a fresh
            // (and forever-incomplete) join.
            let shards = self.spec.stages[stage].state.shards();
            for (k, (item, from)) in orphans.into_iter().enumerate() {
                if self.down[from] {
                    self.report.record_replay();
                    self.hooks.events.emit(RunEvent::ItemReplayed {
                        session: self.session,
                        seq: item,
                        stage,
                        from,
                        branch: self.spec.graph.branch_of(stage),
                    });
                }
                let dest = if shards > 0 {
                    let owner = adapipe_state::owner_of(
                        adapipe_state::shard_of(item, shards),
                        new_placement.width(),
                    );
                    new_placement.hosts()[owner].index()
                } else {
                    new_placement.hosts()[k % new_placement.width()].index()
                };
                self.events.schedule(
                    ready,
                    Ev::Rehome {
                        item,
                        stage,
                        node: dest,
                    },
                );
            }
            // Stateful stages cannot serve on the new hosts until their
            // state lands.
            if !self.spec.stages[stage].stateless {
                for &host in new_placement.hosts() {
                    self.ready_at.insert((stage, host.index()), ready);
                    self.events
                        .schedule(ready, Ev::Retry { node: host.index() });
                }
            }
        }
    }

    fn on_node_down(&mut self, node: usize, _at: SimTime) {
        self.down[node] = true;
    }

    fn on_node_up(&mut self, node: usize, _at: SimTime) {
        self.down[node] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_gridsim::fault::FaultPlan;
    use adapipe_gridsim::grid::{testbed_hetero8, testbed_small3, GridSpec};
    use adapipe_gridsim::load::LoadModel;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    /// 3 identical free nodes, 3 balanced unit-work stages, no bytes.
    fn balanced_setup() -> (GridSpec, PipelineSpec) {
        (testbed_small3(), PipelineSpec::balanced(3, 1.0, 0))
    }

    #[test]
    fn balanced_pipeline_achieves_model_throughput() {
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig {
            items: 200,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 200);
        assert!(!report.truncated);
        // Model: latency 3 s + 199 items at 1 item/s = 202 s.
        let makespan = report.makespan.as_secs_f64();
        assert!((makespan - 202.0).abs() < 2.0, "makespan={makespan}");
    }

    #[test]
    fn coalesced_mapping_halves_throughput() {
        let (grid, spec) = balanced_setup();
        let all_on_one = SimConfig {
            items: 100,
            initial_mapping: Some(Mapping::all_on(n(0), 3)),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &all_on_one);
        assert_eq!(report.completed, 100);
        // 3 units of work per item on one unit-speed node ⇒ ≈ 300 s.
        let makespan = report.makespan.as_secs_f64();
        assert!((makespan - 300.0).abs() < 3.0, "makespan={makespan}");
        assert!(report.node_utilisation(0) > 0.95);
    }

    #[test]
    fn rate_scale_stretches_service_proportionally() {
        let (grid, spec) = balanced_setup();
        let mk = |scale| SimConfig {
            items: 100,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            rate_scale: scale,
            ..SimConfig::default()
        };
        let full = run(&grid, &spec, &mk(1.0));
        let half = run(&grid, &spec, &mk(0.5));
        assert_eq!(full.completed, 100);
        assert_eq!(half.completed, 100);
        // Half the pool share ⇒ every service takes twice as long ⇒
        // the steady-state rate halves and the makespan roughly doubles.
        let ratio = half.makespan.as_secs_f64() / full.makespan.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.1, "ratio={ratio}");
    }

    #[test]
    fn stepper_surfaces_next_event_and_buffered_completions() {
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig {
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            ..SimConfig::default()
        };
        let mut stepper = SimStepper::new(&grid, spec, &cfg);
        assert_eq!(stepper.next_event_at(), None);
        stepper.push_at(secs(3.0));
        // The buffered (not yet flushed) arrival is visible.
        assert_eq!(stepper.next_event_at(), Some(secs(3.0)));
        stepper.close();
        assert_eq!(stepper.pop_completion(), None);
        while stepper.pop_completion().is_none() {
            assert!(stepper.next_event_at().is_some(), "events starved early");
            assert!(stepper.step(), "run exhausted before completion");
        }
        assert_eq!(stepper.completed(), 1);
        assert_eq!(stepper.pop_completion(), None);
    }

    #[test]
    fn simulation_is_deterministic() {
        let grid = testbed_hetero8(42);
        let spec = PipelineSpec::balanced(4, 1.0, 10_000);
        let cfg = SimConfig {
            items: 300,
            policy: Policy::periodic_default(),
            ..SimConfig::default()
        };
        let a = run(&grid, &spec, &cfg);
        let b = run(&grid, &spec, &cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.adaptations.len(), b.adaptations.len());
    }

    #[test]
    fn planned_launch_mapping_beats_all_on_slowest() {
        let grid = testbed_hetero8(1);
        let spec = PipelineSpec::balanced(4, 2.0, 1000);
        // Planned (None → planner) vs a deliberately bad launch mapping.
        let planned = run(
            &grid,
            &spec,
            &SimConfig {
                items: 200,
                ..SimConfig::default()
            },
        );
        let bad = run(
            &grid,
            &spec,
            &SimConfig {
                items: 200,
                initial_mapping: Some(Mapping::all_on(n(7), 4)), // slowest node
                ..SimConfig::default()
            },
        );
        assert!(planned.makespan < bad.makespan);
    }

    #[test]
    fn adaptive_recovers_from_load_step_static_does_not() {
        // Node 1 hosts a stage and collapses to 5 % at t = 50 s.
        let mut grid = testbed_small3();
        FaultPlan::new()
            .slowdown(n(1), secs(50.0), secs(100_000.0), 0.05)
            .apply(&mut grid);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let mapping = Mapping::from_assignment(&[n(0), n(1), n(2)]);

        let static_cfg = SimConfig {
            items: 500,
            initial_mapping: Some(mapping.clone()),
            policy: Policy::Static,
            ..SimConfig::default()
        };
        let adaptive_cfg = SimConfig {
            items: 500,
            initial_mapping: Some(mapping),
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            ..SimConfig::default()
        };
        let static_report = run(&grid, &spec, &static_cfg);
        let adaptive_report = run(&grid, &spec, &adaptive_cfg);

        assert_eq!(static_report.completed, 500);
        assert_eq!(adaptive_report.completed, 500);
        assert!(adaptive_report.adaptation_count() >= 1, "must re-map");
        // Static: post-step the bottleneck is 1/0.05 = 20 s/item.
        // Adaptive re-maps off node 1 (e.g. coalescing on the free nodes).
        assert!(
            adaptive_report.makespan.as_secs_f64() < 0.5 * static_report.makespan.as_secs_f64(),
            "adaptive {} vs static {}",
            adaptive_report.makespan,
            static_report.makespan
        );
    }

    #[test]
    fn oracle_is_at_least_as_good_as_adaptive() {
        let mut grid = testbed_small3();
        FaultPlan::new()
            .slowdown(n(1), secs(30.0), secs(100_000.0), 0.1)
            .apply(&mut grid);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let mapping = Mapping::from_assignment(&[n(0), n(1), n(2)]);
        let mk = |policy| SimConfig {
            items: 400,
            initial_mapping: Some(mapping.clone()),
            policy,
            ..SimConfig::default()
        };
        let adaptive = run(
            &grid,
            &spec,
            &mk(Policy::Periodic {
                interval: SimDuration::from_secs(5),
            }),
        );
        let oracle = run(
            &grid,
            &spec,
            &mk(Policy::Oracle {
                interval: SimDuration::from_secs(5),
            }),
        );
        // Allow a small tolerance: the oracle plans on interval means, so
        // pathological tie-breaks can cost it a hair.
        assert!(
            oracle.makespan.as_secs_f64() <= adaptive.makespan.as_secs_f64() * 1.05,
            "oracle {} vs adaptive {}",
            oracle.makespan,
            adaptive.makespan
        );
    }

    #[test]
    fn reactive_adapts_only_on_degradation() {
        let mut grid = testbed_small3();
        FaultPlan::new()
            .slowdown(n(1), secs(50.0), secs(100_000.0), 0.05)
            .apply(&mut grid);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let mapping = Mapping::from_assignment(&[n(0), n(1), n(2)]);
        let cfg = SimConfig {
            items: 400,
            initial_mapping: Some(mapping),
            policy: Policy::Reactive {
                interval: SimDuration::from_secs(5),
                degradation: 0.7,
            },
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 400);
        assert!(report.adaptation_count() >= 1);
        // The first adaptation happens after the fault, not before.
        assert!(report.adaptations[0].at >= secs(50.0));
    }

    #[test]
    fn replicated_stage_processes_all_items_exactly_once() {
        let grid = testbed_small3();
        let mut spec = PipelineSpec::balanced(2, 1.0, 0);
        spec.stages[0].work = Box::new(crate::spec::ConstantWork(2.0));
        let mapping = Mapping::new(vec![
            adapipe_mapper::mapping::Placement::replicated(vec![n(0), n(1)]),
            adapipe_mapper::mapping::Placement::single(n(2)),
        ]);
        let cfg = SimConfig {
            items: 100,
            initial_mapping: Some(mapping),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 100);
        // Hot stage is halved: bottleneck = max(2/2, 1) = 1 s/item.
        assert!((report.makespan.as_secs_f64() - 102.0).abs() < 3.0);
    }

    #[test]
    fn least_loaded_selection_favours_the_faster_replica() {
        // One stage replicated over a fast and a 4×-slower node. Under
        // least-loaded selection items pile up behind the slow replica
        // and new arrivals steer to the fast one, so the run beats
        // round-robin (which deals the slow node an equal share).
        let mut grid = testbed_small3();
        grid.set_load(n(1), LoadModel::constant(0.25));
        let spec = PipelineSpec::balanced(1, 1.0, 0);
        let mapping = Mapping::new(vec![adapipe_mapper::mapping::Placement::replicated(vec![
            n(0),
            n(1),
        ])]);
        let mk = |selection| SimConfig {
            items: 200,
            initial_mapping: Some(mapping.clone()),
            arrivals: ArrivalProcess::Uniform { rate: 1.2 },
            selection,
            ..SimConfig::default()
        };
        let rr = run(&grid, &spec, &mk(Selection::RoundRobin));
        let ll = run(&grid, &spec, &mk(Selection::LeastLoaded));
        assert_eq!(rr.completed, 200);
        assert_eq!(ll.completed, 200);
        assert!(
            ll.makespan < rr.makespan,
            "least-loaded {} should beat round-robin {}",
            ll.makespan,
            rr.makespan
        );
    }

    #[test]
    fn stateful_stage_blocks_until_state_arrives() {
        // Stage 1 is stateful with 100 MB of state: migration over a LAN
        // takes ≈ 0.8 s; the adaptive run must still complete correctly.
        let mut grid = testbed_small3();
        FaultPlan::new()
            .slowdown(n(1), secs(20.0), secs(100_000.0), 0.02)
            .apply(&mut grid);
        let mut spec = PipelineSpec::balanced(3, 1.0, 0);
        spec.stages[1] = crate::spec::StageSpec::balanced("stateful", 1.0, 0).with_state(100 << 20);
        let cfg = SimConfig {
            items: 300,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 300);
        assert!(report.adaptation_count() >= 1);
        let migration = report.adaptations[0].migration_cost;
        assert!(
            migration > SimDuration::from_millis(500),
            "state transfer must dominate migration cost, got {migration}"
        );
    }

    #[test]
    fn config_fault_plan_replays_items_and_reports_downtime() {
        // The same crash as crash_under_adaptive_policy_completes, but
        // declared on SimConfig: the grid passed in stays pristine, the
        // run survives, stranded items count as replays, and the report
        // carries per-node downtime.
        let grid = testbed_small3();
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let hooks = adapipe_runtime::session::RunHooks::default();
        let events = hooks.events.subscribe();
        let cfg = SimConfig {
            items: 200,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            faults: FaultPlan::new().crash(n(1), secs(10.0)),
            hooks,
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 200, "crash must be survived");
        assert!(!report.truncated);
        // The caller's grid was not mutated by the fault plan.
        assert_eq!(grid.node(n(1)).load.availability(secs(20.0)), 1.0);
        // Items queued on the dead node were rescued and counted.
        assert!(report.replays > 0, "stranded items must replay");
        assert!(!report.final_mapping.nodes_used().contains(&n(1)));
        assert_eq!(report.node_downtime.len(), 3);
        assert!(report.node_downtime[1] > SimDuration::ZERO);
        assert_eq!(report.node_downtime[0], SimDuration::ZERO);
        let seen: Vec<_> = events.try_iter().collect();
        use adapipe_runtime::session::RunEvent;
        assert!(seen
            .iter()
            .any(|e| matches!(e, RunEvent::NodeDown { node: 1, .. })));
        let replay_events = seen
            .iter()
            .filter(|e| matches!(e, RunEvent::ItemReplayed { .. }))
            .count() as u64;
        assert_eq!(replay_events, report.replays);
    }

    #[test]
    fn config_faults_match_manually_applied_plan() {
        // Declaring a slowdown through SimConfig must produce the exact
        // run a manually pre-faulted grid produces: same physics, and
        // a slowdown alone adds no control-plane interference.
        let plan = FaultPlan::new().slowdown(n(1), secs(50.0), secs(100_000.0), 0.05);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let mapping = Mapping::from_assignment(&[n(0), n(1), n(2)]);
        let policy = Policy::Periodic {
            interval: SimDuration::from_secs(5),
        };
        let mut pre_faulted = testbed_small3();
        plan.apply(&mut pre_faulted);
        let manual = run(
            &pre_faulted,
            &spec,
            &SimConfig {
                items: 300,
                initial_mapping: Some(mapping.clone()),
                policy,
                ..SimConfig::default()
            },
        );
        let grid = testbed_small3();
        let declared = run(
            &grid,
            &spec,
            &SimConfig {
                items: 300,
                initial_mapping: Some(mapping),
                policy,
                faults: plan,
                ..SimConfig::default()
            },
        );
        assert_eq!(declared.completed, manual.completed);
        assert_eq!(declared.makespan, manual.makespan);
        assert_eq!(declared.adaptations.len(), manual.adaptations.len());
        assert_eq!(declared.final_mapping, manual.final_mapping);
        assert_eq!(declared.replays, 0, "a slowdown strands nothing");
    }

    #[test]
    fn crash_under_static_policy_truncates_run() {
        let mut grid = testbed_small3();
        FaultPlan::new().crash(n(1), secs(10.0)).apply(&mut grid);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let cfg = SimConfig {
            items: 200,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            policy: Policy::Static,
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert!(report.truncated, "static run must starve after the crash");
        assert!(report.completed < 200);
    }

    #[test]
    fn crash_under_adaptive_policy_completes() {
        let mut grid = testbed_small3();
        FaultPlan::new().crash(n(1), secs(10.0)).apply(&mut grid);
        let spec = PipelineSpec::balanced(3, 1.0, 0);
        let cfg = SimConfig {
            items: 200,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 200, "adaptive run must survive the crash");
        assert!(!report.truncated);
    }

    #[test]
    fn poisson_arrivals_spread_completions() {
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig {
            items: 100,
            arrivals: ArrivalProcess::Poisson { rate: 0.5, seed: 3 },
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 100);
        // Arrival-limited: makespan ≈ 100/0.5 = 200 s, definitely > 150.
        assert!(report.makespan.as_secs_f64() > 150.0);
    }

    #[test]
    fn uniform_arrivals_respect_rate() {
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig {
            items: 50,
            arrivals: ArrivalProcess::Uniform { rate: 0.25 },
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 50);
        // Last arrival at 49/0.25 = 196 s + ~3 s latency.
        assert!((report.makespan.as_secs_f64() - 199.0).abs() < 3.0);
    }

    #[test]
    fn mean_latency_matches_pipeline_depth() {
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig {
            items: 1,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        // One item: latency = 3 stages × 1 s (+ negligible LAN hops).
        assert!((report.mean_latency.as_secs_f64() - 3.0).abs() < 0.1);
    }

    #[test]
    fn link_contention_serialises_big_transfers() {
        // Two stages on different nodes with huge items: with contention
        // the link is the bottleneck and serialises strictly.
        let grid = testbed_small3();
        let mut spec = PipelineSpec::balanced(2, 0.01, 0);
        spec.stages[0].out_bytes = 12_500_000; // 12.5 MB over 1 Gbit/s LAN = 0.1 s
        let mapping = Mapping::from_assignment(&[n(0), n(1)]);
        let mk = |contention| SimConfig {
            items: 100,
            initial_mapping: Some(mapping.clone()),
            link_contention: contention,
            ..SimConfig::default()
        };
        let without = run(&grid, &spec, &mk(false));
        let with = run(&grid, &spec, &mk(true));
        assert!(with.makespan >= without.makespan);
        assert_eq!(with.completed, 100);
    }

    /// (a ‖ b) → join over three nodes; the equivalent serialized chain
    /// is the same three stages in series.
    fn two_branch_spec(work: f64) -> PipelineSpec {
        PipelineSpec::with_graph(
            vec![
                crate::spec::StageSpec::balanced("a", work, 0),
                crate::spec::StageSpec::balanced("b", work, 0),
                crate::spec::StageSpec::balanced("join", 0.0, 0),
            ],
            crate::spec::StageGraph::builder().split(&[1, 1]).build(),
        )
    }

    #[test]
    fn branched_pipeline_completes_every_item_exactly_once() {
        let grid = testbed_small3();
        let spec = two_branch_spec(1.0);
        let cfg = SimConfig {
            items: 50,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 50);
        assert!(!report.truncated);
        // Every join consumed both branch outputs: the bottleneck stays
        // 1 s/item, so 50 items drain in ≈ latency + 49 s.
        let makespan = report.makespan.as_secs_f64();
        assert!((makespan - 50.0).abs() < 2.0, "makespan={makespan}");
    }

    #[test]
    fn branches_overlap_where_the_serial_chain_cannot() {
        // One item through (1 s ‖ 1 s) → join arrives in ≈ 1 s; the
        // serialized chain needs ≈ 2 s.
        let grid = testbed_small3();
        let mapping = Mapping::from_assignment(&[n(0), n(1), n(2)]);
        let mk = |spec: &PipelineSpec| {
            run(
                &grid,
                spec,
                &SimConfig {
                    items: 1,
                    initial_mapping: Some(mapping.clone()),
                    ..SimConfig::default()
                },
            )
        };
        let branched = mk(&two_branch_spec(1.0));
        let chain = mk(&PipelineSpec::new(vec![
            crate::spec::StageSpec::balanced("a", 1.0, 0),
            crate::spec::StageSpec::balanced("b", 1.0, 0),
            crate::spec::StageSpec::balanced("join", 0.0, 0),
        ]));
        let overlap = branched.mean_latency.as_secs_f64();
        let serial = chain.mean_latency.as_secs_f64();
        assert!((overlap - 1.0).abs() < 0.1, "branched latency {overlap}");
        assert!((serial - 2.0).abs() < 0.1, "chain latency {serial}");
    }

    #[test]
    fn merge_host_crash_rescues_queued_joined_items() {
        // Fast branches feed a slow merge, so a deep queue of *joined*
        // items sits at the merge host when it crashes. The forced
        // re-map must re-home them as already-joined tasks (not count
        // them as fresh — forever incomplete — branch arrivals): every
        // item completes on a live node.
        let grid = testbed_small3();
        let spec = PipelineSpec::with_graph(
            vec![
                crate::spec::StageSpec::balanced("a", 0.05, 0),
                crate::spec::StageSpec::balanced("b", 0.05, 0),
                crate::spec::StageSpec::balanced("join", 1.0, 0),
            ],
            crate::spec::StageGraph::builder().split(&[1, 1]).build(),
        );
        let cfg = SimConfig {
            items: 100,
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            faults: FaultPlan::new().crash(n(2), secs(20.0)),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(
            report.completed, 100,
            "joined items stranded at the crashed merge host"
        );
        assert!(!report.truncated);
        assert!(report.replays > 0, "the merge backlog must replay");
        assert!(!report.final_mapping.nodes_used().contains(&n(2)));
    }

    #[test]
    fn branched_execution_is_deterministic() {
        let grid = testbed_hetero8(7);
        let spec = PipelineSpec::with_graph(
            vec![
                crate::spec::StageSpec::balanced("pre", 0.5, 5_000),
                crate::spec::StageSpec::balanced("a", 1.0, 2_000),
                crate::spec::StageSpec::balanced("b", 1.5, 2_000),
                crate::spec::StageSpec::balanced("join", 0.2, 1_000),
            ],
            crate::spec::StageGraph::builder()
                .stages(1)
                .split(&[1, 1])
                .build(),
        );
        let cfg = SimConfig {
            items: 120,
            policy: Policy::periodic_default(),
            ..SimConfig::default()
        };
        let a = run(&grid, &spec, &cfg);
        let b = run(&grid, &spec, &cfg);
        assert_eq!(a.completed, 120);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.final_mapping, b.final_mapping);
        assert_eq!(a.adaptations.len(), b.adaptations.len());
    }

    #[test]
    fn zero_items_complete_instantly() {
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig {
            items: 0,
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan, SimTime::ZERO);
        assert!(!report.truncated);
    }

    #[test]
    fn stepper_matches_batch_run_exactly() {
        // Driving the stepper by hand — pushes interleaved with
        // completion-by-completion stepping — must land on the same
        // report as the batch wrapper, because batch is the same world
        // fed all at once.
        let grid = testbed_hetero8(42);
        let spec = PipelineSpec::balanced(4, 1.0, 10_000);
        let cfg = SimConfig {
            items: 120,
            policy: Policy::periodic_default(),
            ..SimConfig::default()
        };
        let batch = run(&grid, &spec, &cfg);

        let mut stepper = SimStepper::new(&grid, spec.clone(), &cfg);
        for &at in &cfg.arrivals.schedule(cfg.items) {
            stepper.push_at(at);
        }
        stepper.close();
        let mut seen = Vec::new();
        while let Some(item) = stepper.next_completion() {
            seen.push(item);
        }
        assert_eq!(seen.len() as u64, cfg.items);
        // Every item completes exactly once.
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..cfg.items).collect::<Vec<_>>());
        let report = stepper.finish();
        assert_eq!(report.completed, batch.completed);
        assert_eq!(report.makespan, batch.makespan);
        assert_eq!(report.adaptations.len(), batch.adaptations.len());
        assert_eq!(report.final_mapping, batch.final_mapping);
        assert!(!report.truncated);
    }

    #[test]
    fn stepper_supports_live_interleaved_pushes() {
        // An open-stream session: push a few items, drain them, push
        // more — the world keeps its clock and the report accounts for
        // everything exactly once.
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig {
            items: 10, // amortisation hint only
            initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
            ..SimConfig::default()
        };
        let mut stepper = SimStepper::new(&grid, spec, &cfg);
        for _ in 0..3 {
            stepper.push_at(stepper.now());
        }
        let mut first = Vec::new();
        while let Some(item) = stepper.next_completion() {
            first.push(item);
        }
        assert_eq!(first, vec![0, 1, 2]);
        assert!(!stepper.is_exhausted(), "open stream stays live");
        // The clock advanced; later pushes arrive later.
        let t = stepper.now();
        assert!(t > SimTime::ZERO);
        for _ in 0..2 {
            stepper.push_at(stepper.now());
        }
        stepper.close();
        let mut second = Vec::new();
        while let Some(item) = stepper.next_completion() {
            second.push(item);
        }
        assert_eq!(second, vec![3, 4]);
        assert!(stepper.all_done());
        let report = stepper.finish();
        assert_eq!(report.completed, 5);
        assert!(!report.truncated);
    }

    #[test]
    fn unfinished_stepper_reports_truncation() {
        let (grid, spec) = balanced_setup();
        let cfg = SimConfig::default();
        let mut stepper = SimStepper::new(&grid, spec, &cfg);
        for _ in 0..4 {
            stepper.push_at(SimTime::ZERO);
        }
        // Deliver just one completion, then abandon the rest.
        assert_eq!(stepper.next_completion(), Some(0));
        let report = stepper.finish();
        assert_eq!(report.completed, 1);
        assert!(report.truncated, "3 items were pushed but never drained");
    }

    #[test]
    fn heavy_load_model_slows_service_exactly() {
        // Availability 0.5 constant: unit work takes 2 s.
        let mut grid = testbed_small3();
        grid.set_load(n(0), LoadModel::constant(0.5));
        let spec = PipelineSpec::balanced(1, 1.0, 0);
        let cfg = SimConfig {
            items: 10,
            initial_mapping: Some(Mapping::from_assignment(&[n(0)])),
            ..SimConfig::default()
        };
        let report = run(&grid, &spec, &cfg);
        assert!((report.makespan.as_secs_f64() - 20.0).abs() < 0.5);
    }
}
