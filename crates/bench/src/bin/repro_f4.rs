//! Figure 4 — adaptivity gain vs load volatility (and the thrashing
//! regime).
//!
//! Square-wave background load (availability alternating 1.0 ↔ 0.1) on
//! two of four nodes, sweeping the wave period from far below to far
//! above the 5 s adaptation period. Gain = static / adaptive makespan.
//!
//! The interesting regimes:
//! * period ≪ adaptation interval — the controller cannot track the
//!   load; hysteresis must keep it from thrashing (gain ≈ 1, not < 1);
//! * period ≈ interval — danger zone: naive adaptation (no hysteresis)
//!   loses to static here;
//! * period ≫ interval — adaptation pays off fully.

use adapipe_bench::{banner, Table};
use adapipe_core::prelude::*;
use adapipe_core::simengine::run as sim_run;
use adapipe_gridsim::prelude::*;
use adapipe_mapper::decide::DecisionConfig;
use adapipe_mapper::mapping::Mapping;

fn grid_with_wave(period: SimDuration) -> GridSpec {
    let nodes = (0..4)
        .map(|i| {
            let load = if i == 1 || i == 3 {
                LoadModel::square_wave(
                    1.0,
                    0.1,
                    period,
                    0.5,
                    // Offset the two waves so the grid is never uniformly bad.
                    if i == 3 {
                        period.mul_f64(0.5)
                    } else {
                        SimDuration::ZERO
                    },
                )
            } else {
                LoadModel::free()
            };
            Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), load)
        })
        .collect();
    GridSpec::new(nodes, Topology::uniform(4, LinkSpec::lan()))
}

fn main() {
    banner(
        "F4",
        "adaptivity gain vs load volatility (square-wave period sweep)",
        "gain ~1 for very short periods (hysteresis prevents loss), dips \
         near the adaptation interval for the naive controller, grows \
         toward the static-load gain for long periods",
    );

    let interval = SimDuration::from_secs(5);
    let items = 600u64;
    let spec = PipelineSpec::balanced(4, 1.0, 10_000);
    let mapping = Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);

    let mut table = Table::new(&[
        "period(s)",
        "static(s)",
        "adaptive(s)",
        "naive(s)",
        "gain",
        "gain naive",
        "remaps",
        "remaps naive",
    ]);

    for period_s in [2u64, 5, 10, 20, 60, 120, 300] {
        let period = SimDuration::from_secs(period_s);
        // `stable` = the full stability stack (hysteresis + warm-up +
        // regret guard); `naive` strips all three.
        let run = |policy: Policy, stable: bool| {
            let mut cfg = SimConfig {
                items,
                policy,
                initial_mapping: Some(mapping.clone()),
                ..SimConfig::default()
            };
            if !stable {
                cfg.controller.decision = DecisionConfig {
                    min_relative_gain: 0.0,
                    cost_benefit_factor: 0.0,
                };
                cfg.controller.warmup_ticks = 0;
                cfg.controller.guard_bad_ticks = 0;
            }
            sim_run(&grid_with_wave(period), &spec, &cfg)
        };

        let static_r = run(Policy::Static, true);
        let adaptive_r = run(Policy::Periodic { interval }, true);
        let naive_r = run(Policy::Periodic { interval }, false);

        let gain = static_r.makespan.as_secs_f64() / adaptive_r.makespan.as_secs_f64();
        let gain_naive = static_r.makespan.as_secs_f64() / naive_r.makespan.as_secs_f64();
        table.row(vec![
            period_s.to_string(),
            format!("{:.1}", static_r.makespan.as_secs_f64()),
            format!("{:.1}", adaptive_r.makespan.as_secs_f64()),
            format!("{:.1}", naive_r.makespan.as_secs_f64()),
            format!("{gain:.3}"),
            format!("{gain_naive:.3}"),
            adaptive_r.adaptation_count().to_string(),
            naive_r.adaptation_count().to_string(),
        ]);
    }
    table.print();
    println!("`naive` = hysteresis disabled (min gain 0, cost/benefit 0)");
}
