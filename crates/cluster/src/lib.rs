//! # adapipe-cluster
//!
//! Multi-tenant serving for the adaptive parallel pipeline: many
//! concurrent pipelines — heterogeneous stage graphs, each with its own
//! typed push/pull session — time-share **one** node pool, with a
//! single global arbitration loop dividing capacity across tenants.
//!
//! * [`arbiter`] — per-window demand sensing (progress delta + inbox
//!   backlog) and the demand → share derivation feeding
//!   `adapipe_mapper::share::arbitrate` (weighted progressive filling
//!   under `min_share`/`max_share` quotas);
//! * [`threads`] — [`threads::ThreadCluster`]: the shared engine worker
//!   pool plus the background arbiter thread that pushes the arbitrated
//!   shares into every tenant's handle. Shares act twice: they
//!   re-weight the pool inboxes' start-time-fair-queueing lanes (a
//!   spiking tenant cannot starve the rest) and re-scale each tenant's
//!   planner view of the pool (replicas migrate toward the tenants that
//!   can use them).
//!
//! The deterministic simulation backend needs no arbiter thread: the
//! facade grants each sim session a *static* share
//! (`adapipe_core::simengine::SimConfig::rate_scale`) and interleaves
//! the sessions' event clocks; see `adapipe::api::Cluster`.
//!
//! Applications normally reach all of this through the facade's
//! `Cluster::new` / `admit` / `evict`; this crate is the
//! backend-facing machinery.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arbiter;
pub mod threads;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::arbiter::{arbitrate_window, window_demands, TenantSignal, IDLE_GRACE};
    pub use crate::threads::ThreadCluster;
    pub use adapipe_mapper::share::ShareQuota;
}

pub use prelude::*;
