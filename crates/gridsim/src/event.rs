//! A deterministic discrete-event scheduler.
//!
//! Events are ordered by `(time, sequence)`: ties in simulated time are
//! broken by insertion order, so a run is a pure function of its inputs.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue over payloads of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest entry first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulator's past: events may not rewrite
    /// history.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event at {at} before current time {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue went backwards");
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.payload))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(secs(3.0), "c");
        q.schedule(secs(1.0), "a");
        q.schedule(secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = secs(5.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(secs(2.0), ());
        q.schedule(secs(7.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), secs(2.0));
        q.pop();
        assert_eq!(q.now(), secs(7.0));
        assert_eq!(q.processed(), 2);
    }

    #[test]
    fn events_may_schedule_at_current_time() {
        let mut q = EventQueue::new();
        q.schedule(secs(1.0), 0);
        q.pop();
        q.schedule(secs(1.0), 1); // same instant as `now` is allowed
        assert_eq!(q.pop().map(|(_, p)| p), Some(1));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(secs(5.0), ());
        q.pop();
        q.schedule(secs(1.0), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(secs(4.0), ());
        assert_eq!(q.peek_time(), Some(secs(4.0)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
