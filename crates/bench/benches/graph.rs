//! Series-parallel graph vs the equivalent serialized chain.
//!
//! The same nine stages (2 branches × 4 stages + merge) run twice on a
//! pinned one-stage-per-node mapping: once as a 2-branch stage graph
//! (branches overlap — one item's critical path is 4 stages), once
//! flattened into a serial chain (the critical path is all 8 stages).
//! Throughput is resource-bound either way; the win is the fill/drain
//! latency, so the branched makespan must beat the chain by ≥ 1.3× on
//! this latency-sensitive burst. The gate lives *inside* the bench:
//! regressing the ratio fails the run, locally and in CI.
//!
//! `cargo bench -p adapipe-bench --bench graph`
//!
//! Regenerate the committed baseline with:
//! `ADAPIPE_BENCH_JSON=$PWD/BENCH_graph.json \
//!     cargo bench -p adapipe-bench --bench graph`

use adapipe_core::simengine::{run, SimConfig};
use adapipe_core::spec::{PipelineSpec, StageGraph, StageSpec};
use adapipe_gridsim::grid::GridSpec;
use adapipe_gridsim::load::LoadModel;
use adapipe_gridsim::net::{LinkSpec, Topology};
use adapipe_gridsim::node::{Node, NodeId, NodeSpec};
use adapipe_mapper::mapping::Mapping;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

const BRANCH_DEPTH: usize = 4;
const STAGE_WORK: f64 = 2.0;
const ITEMS: u64 = 6;

fn stages() -> Vec<StageSpec> {
    let mut stages: Vec<StageSpec> = (0..2 * BRANCH_DEPTH)
        .map(|i| StageSpec::balanced(format!("s{i}"), STAGE_WORK, 1_000))
        .collect();
    stages.push(StageSpec::balanced("join", 0.1, 1_000));
    stages
}

fn branched_spec() -> PipelineSpec {
    PipelineSpec::with_graph(
        stages(),
        StageGraph::builder()
            .split(&[BRANCH_DEPTH, BRANCH_DEPTH])
            .build(),
    )
}

fn chain_spec() -> PipelineSpec {
    PipelineSpec::new(stages())
}

fn grid() -> GridSpec {
    let np = 2 * BRANCH_DEPTH + 1;
    let nodes = (0..np)
        .map(|i| Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), LoadModel::free()))
        .collect();
    GridSpec::new(nodes, Topology::uniform(np, LinkSpec::lan()))
}

fn cfg() -> SimConfig {
    let np = 2 * BRANCH_DEPTH + 1;
    SimConfig {
        items: ITEMS,
        initial_mapping: Some(Mapping::from_assignment(
            &(0..np).map(NodeId).collect::<Vec<_>>(),
        )),
        ..SimConfig::default()
    }
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    let grid = grid();
    group.bench_function("branched_2x4", |b| {
        b.iter(|| run(&grid, &branched_spec(), &cfg()))
    });
    group.bench_function("serial_chain_8", |b| {
        b.iter(|| run(&grid, &chain_spec(), &cfg()))
    });
    group.finish();

    // --- the gate: simulated makespan ratio ---------------------------
    let branched = run(&grid, &branched_spec(), &cfg());
    let chain = run(&grid, &chain_spec(), &cfg());
    assert_eq!(branched.completed, ITEMS);
    assert_eq!(chain.completed, ITEMS);
    let ratio = chain.makespan.as_secs_f64() / branched.makespan.as_secs_f64();
    println!(
        "graph gate: chain {:.2}s / branched {:.2}s = {ratio:.3}x (need >= 1.3)",
        chain.makespan.as_secs_f64(),
        branched.makespan.as_secs_f64(),
    );
    assert!(
        ratio >= 1.3,
        "2-branch graph must beat the serialized chain by >= 1.3x simulated \
         makespan, measured {ratio:.3}x"
    );
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
