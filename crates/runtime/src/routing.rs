//! Live stage→replica routing.
//!
//! A [`RoutingTable`] wraps the current [`Mapping`] with per-stage
//! replica-selection state. Both execution backends route every item
//! through it, and the adaptation loop re-points a *running* pipeline by
//! [`RoutingTable::install`]ing a new mapping: items already in flight
//! towards an old host are forwarded on arrival (backends check
//! [`RoutingTable::contains`]), new items go straight to the new hosts.
//!
//! Selection state is kept in atomics so the hot path takes `&self`:
//! the threaded engine routes concurrently from many workers under a
//! read lock, and the simulator gets identical (deterministic)
//! round-robin behaviour through the same code.

use adapipe_gridsim::node::NodeId;
use adapipe_mapper::mapping::Mapping;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// How the table picks one replica among a stage's hosts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Selection {
    /// Deal items cyclically over the replica set (the paper's scheme;
    /// deterministic given arrival order).
    #[default]
    RoundRobin,
    /// Send each item to the replica with the smallest reported load
    /// (queue depth); ties break towards the lowest node id. Requires
    /// the backend to supply a load probe via
    /// [`RoutingTable::route_least_loaded`].
    LeastLoaded,
}

/// The shared stage→replica-set routing table.
#[derive(Debug)]
pub struct RoutingTable {
    mapping: Mapping,
    /// Per-stage round-robin cursor. Atomic so routing takes `&self`.
    rr: Vec<AtomicUsize>,
    selection: Selection,
    /// Per-node health flag: a down node is skipped by every selection
    /// policy while at least one of the stage's hosts is up. Atomic so
    /// fault transitions take `&self` (they race only with routing
    /// reads, never with `install`'s write lock).
    down: Vec<AtomicBool>,
}

impl RoutingTable {
    /// Creates a table routing according to `mapping` with round-robin
    /// replica selection. Node health covers the mapping's own hosts;
    /// prefer [`RoutingTable::with_selection`] with the backend's true
    /// node count when faults may name nodes outside the mapping.
    pub fn new(mapping: Mapping) -> Self {
        let nodes = mapping
            .nodes_used()
            .iter()
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0);
        Self::with_selection(mapping, Selection::RoundRobin, nodes)
    }

    /// Creates a table with an explicit selection policy over a backend
    /// of `node_count` nodes.
    pub fn with_selection(mapping: Mapping, selection: Selection, node_count: usize) -> Self {
        let rr = (0..mapping.len()).map(|_| AtomicUsize::new(0)).collect();
        let down = (0..node_count).map(|_| AtomicBool::new(false)).collect();
        RoutingTable {
            mapping,
            rr,
            selection,
            down,
        }
    }

    /// The mapping currently in force.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The selection policy.
    pub fn selection(&self) -> Selection {
        self.selection
    }

    /// Number of stages routed.
    pub fn len(&self) -> usize {
        self.mapping.len()
    }

    /// True if the table routes no stages (not constructible).
    pub fn is_empty(&self) -> bool {
        self.mapping.len() == 0
    }

    /// The replica hosts of `stage`.
    pub fn hosts(&self, stage: usize) -> &[NodeId] {
        self.mapping.placement(stage).hosts()
    }

    /// True if `node` currently hosts `stage` — backends use this to
    /// detect items that were in flight across a re-mapping and must be
    /// forwarded.
    pub fn contains(&self, stage: usize, node: NodeId) -> bool {
        self.mapping.placement(stage).contains(node)
    }

    /// Marks `node` down: every selection policy skips it while any
    /// alternative host is alive. Out-of-range nodes are ignored.
    pub fn mark_down(&self, node: NodeId) {
        if let Some(flag) = self.down.get(node.index()) {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Lifts a [`RoutingTable::mark_down`].
    pub fn mark_up(&self, node: NodeId) {
        if let Some(flag) = self.down.get(node.index()) {
            flag.store(false, Ordering::SeqCst);
        }
    }

    /// True if `node` is currently marked down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down
            .get(node.index())
            .is_some_and(|f| f.load(Ordering::SeqCst))
    }

    /// True if every host of `stage` is currently marked down — routing
    /// cannot avoid a dead destination and items will park until a
    /// re-map rescues them.
    pub fn all_hosts_down(&self, stage: usize) -> bool {
        self.mapping
            .placement(stage)
            .hosts()
            .iter()
            .all(|&h| self.is_down(h))
    }

    /// Picks the destination replica for the next item of `stage`,
    /// always round-robin. Tables configured with
    /// [`Selection::LeastLoaded`] need a load probe — route through
    /// [`RoutingTable::route_with_load`] instead (debug builds assert
    /// this so a least-loaded table cannot silently round-robin).
    pub fn route(&self, stage: usize) -> NodeId {
        debug_assert!(
            self.selection == Selection::RoundRobin,
            "route() ignores the {:?} policy; use route_with_load with a load probe",
            self.selection
        );
        self.route_round_robin(stage)
    }

    fn route_round_robin(&self, stage: usize) -> NodeId {
        let hosts = self.mapping.placement(stage).hosts();
        let k = self.rr[stage].fetch_add(1, Ordering::Relaxed);
        // Skip hosts marked down, scanning from the cursor so live
        // hosts still share the load cyclically. With every host down
        // the plain pick stands: the item parks on schedule and a
        // re-map rescues it.
        for off in 0..hosts.len() {
            let h = hosts[(k + off) % hosts.len()];
            if !self.is_down(h) {
                return h;
            }
        }
        hosts[k % hosts.len()]
    }

    /// Picks the destination replica for the next item of `stage` using
    /// the configured selection policy; `load` reports the backend's
    /// current queue depth per node (only consulted under
    /// [`Selection::LeastLoaded`]).
    pub fn route_with_load(&self, stage: usize, load: impl Fn(NodeId) -> usize) -> NodeId {
        match self.selection {
            Selection::RoundRobin => self.route_round_robin(stage),
            Selection::LeastLoaded => self.route_least_loaded(stage, load),
        }
    }

    /// Picks the currently least-loaded replica of `stage`.
    ///
    /// Tie-breaking is deterministic: among replicas reporting the
    /// minimal load, the **lowest node id** wins — hosts are stored
    /// sorted and `min_by_key` keeps the first minimum. In particular,
    /// when *all* replicas report equal load (the common cold-start
    /// case), every call routes to the lowest-id host; unlike
    /// round-robin there is no cursor, so repeated ties do not rotate.
    pub fn route_least_loaded(&self, stage: usize, load: impl Fn(NodeId) -> usize) -> NodeId {
        let hosts = self.mapping.placement(stage).hosts();
        hosts
            .iter()
            .filter(|&&h| !self.is_down(h))
            .min_by_key(|&&h| load(h))
            .copied()
            // Every host down: pick the nominal minimum anyway — the
            // item parks on schedule and a re-map rescues it.
            .unwrap_or_else(|| {
                *hosts
                    .iter()
                    .min_by_key(|&&h| load(h))
                    .expect("placement is never empty")
            })
    }

    /// Swaps in a new mapping, returning the stages whose placement
    /// changed. Selection cursors of moved stages restart at zero so
    /// post-remap routing is deterministic.
    pub fn install(&mut self, new: Mapping) -> Vec<usize> {
        assert_eq!(new.len(), self.mapping.len(), "mapping length must match");
        let moved = self.mapping.diff(&new);
        for &stage in &moved {
            self.rr[stage].store(0, Ordering::Relaxed);
        }
        self.mapping = new;
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_mapper::mapping::Placement;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    fn replicated_two() -> RoutingTable {
        RoutingTable::new(Mapping::new(vec![
            Placement::replicated(vec![n(0), n(1)]),
            Placement::single(n(2)),
        ]))
    }

    #[test]
    fn round_robin_cycles_hosts() {
        let rt = replicated_two();
        let picks: Vec<NodeId> = (0..4).map(|_| rt.route(0)).collect();
        assert_eq!(picks, vec![n(0), n(1), n(0), n(1)]);
        assert_eq!(rt.route(1), n(2));
    }

    #[test]
    fn least_loaded_picks_emptiest_replica() {
        let rt = replicated_two();
        let dest = rt.route_least_loaded(0, |h| if h == n(0) { 5 } else { 1 });
        assert_eq!(dest, n(1));
        // Ties break to the lowest id.
        assert_eq!(rt.route_least_loaded(0, |_| 3), n(0));
    }

    #[test]
    fn least_loaded_all_equal_ties_break_to_lowest_id_deterministically() {
        // Three replicas all reporting the same depth: every pick must
        // be the lowest node id, and repeated ties must not rotate
        // (there is no cursor — determinism is positional, not stateful).
        let rt = RoutingTable::with_selection(
            Mapping::new(vec![Placement::replicated(vec![n(2), n(0), n(1)])]),
            Selection::LeastLoaded,
            3,
        );
        for depth in [0, 3, 7] {
            for _ in 0..4 {
                assert_eq!(rt.route_least_loaded(0, |_| depth), n(0));
                assert_eq!(rt.route_with_load(0, |_| depth), n(0));
            }
        }
        // A partial tie among the higher ids still resolves to the
        // lowest id within the tied set.
        let pick = rt.route_least_loaded(0, |h| if h == n(0) { 9 } else { 2 });
        assert_eq!(pick, n(1));
    }

    #[test]
    fn route_with_load_respects_selection() {
        let rr = replicated_two();
        assert_eq!(rr.route_with_load(0, |_| 0), n(0)); // round-robin first pick
        let ll = RoutingTable::with_selection(
            Mapping::new(vec![Placement::replicated(vec![n(0), n(1)])]),
            Selection::LeastLoaded,
            2,
        );
        let dest = ll.route_with_load(0, |h| if h == n(0) { 9 } else { 0 });
        assert_eq!(dest, n(1));
    }

    #[test]
    fn install_reports_moved_stages_and_resets_cursor() {
        let mut rt = replicated_two();
        let _ = rt.route(0); // advance the cursor off zero
        let new = Mapping::new(vec![
            Placement::replicated(vec![n(0), n(1)]),
            Placement::single(n(0)), // stage 1 moves
        ]);
        let moved = rt.install(new);
        assert_eq!(moved, vec![1]);
        // Unmoved stage keeps its cursor (next pick continues the cycle).
        assert_eq!(rt.route(0), n(1));
        assert_eq!(rt.route(1), n(0));
    }

    #[test]
    fn contains_tracks_current_mapping() {
        let mut rt = replicated_two();
        assert!(rt.contains(1, n(2)));
        let moved = rt.install(Mapping::new(vec![
            Placement::replicated(vec![n(0), n(1)]),
            Placement::single(n(1)),
        ]));
        assert_eq!(moved, vec![1]);
        assert!(!rt.contains(1, n(2)));
        assert!(rt.contains(1, n(1)));
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn install_rejects_wrong_arity() {
        let mut rt = replicated_two();
        rt.install(Mapping::new(vec![Placement::single(n(0))]));
    }

    #[test]
    fn round_robin_skips_down_hosts() {
        let rt = replicated_two();
        rt.mark_down(n(0));
        assert!(rt.is_down(n(0)));
        // Every pick lands on the surviving replica.
        let picks: Vec<NodeId> = (0..4).map(|_| rt.route(0)).collect();
        assert_eq!(picks, vec![n(1); 4]);
        // Recovery restores the cycle over both hosts.
        rt.mark_up(n(0));
        let picks: Vec<NodeId> = (0..4).map(|_| rt.route(0)).collect();
        assert!(picks.contains(&n(0)) && picks.contains(&n(1)));
    }

    #[test]
    fn least_loaded_skips_down_hosts() {
        let rt = RoutingTable::with_selection(
            Mapping::new(vec![Placement::replicated(vec![n(0), n(1)])]),
            Selection::LeastLoaded,
            2,
        );
        // Node 0 is emptier but down: the pick must avoid it.
        rt.mark_down(n(0));
        let pick = rt.route_least_loaded(0, |h| if h == n(0) { 0 } else { 9 });
        assert_eq!(pick, n(1));
    }

    #[test]
    fn all_hosts_down_falls_back_to_nominal_pick() {
        let rt = replicated_two();
        rt.mark_down(n(0));
        rt.mark_down(n(1));
        assert!(rt.all_hosts_down(0));
        assert!(!rt.all_hosts_down(1), "stage 1's host n2 is alive");
        // The pick still lands on a declared host (items park there
        // until a re-map rescues them) rather than panicking.
        let pick = rt.route(0);
        assert!([n(0), n(1)].contains(&pick));
    }

    #[test]
    fn down_marks_outside_node_range_are_ignored() {
        let rt = replicated_two();
        rt.mark_down(NodeId(99));
        assert!(!rt.is_down(NodeId(99)));
        assert_eq!(rt.route(1), n(2));
    }
}
