//! Deterministic randomness helpers.
//!
//! Load models need two kinds of randomness:
//!
//! * **Stateful streams** ([`Rng64`]) for one-shot generation such as
//!   testbed construction, and
//! * **Stateless hashing** (SplitMix64) so that a model can compute the
//!   random contribution of step *k* without generating steps `0..k`,
//!   keeping availability queries O(1) and order-independent.
//!
//! Everything here is self-contained: the workspace builds offline, so
//! the stateful generator is a SplitMix64 counter stream rather than an
//! external `rand` dependency. The quality is ample for testbed
//! construction and planner restarts; cryptographic uses are out of
//! scope.

/// SplitMix64: a tiny, high-quality 64-bit mixer.
///
/// Given the same input it always returns the same output, which makes it
/// suitable for computing "the random value at step `k` of stream `seed`"
/// without materialising the stream.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mixes a stream seed with a step index into a single hash.
#[inline]
pub fn mix(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index.wrapping_add(0xA076_1D64_78BD_642F)))
}

/// Maps a hash to a uniform float in `[0, 1)`.
#[inline]
pub fn unit_f64(hash: u64) -> f64 {
    // Use the top 53 bits for a dyadic rational in [0,1).
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform float in `[0, 1)` for step `index` of stream `seed`.
#[inline]
pub fn unit_at(seed: u64, index: u64) -> f64 {
    unit_f64(mix(seed, index))
}

/// Exponentially distributed value with the given `mean` for step `index`
/// of stream `seed` (inverse-CDF method).
#[inline]
pub fn exp_at(seed: u64, index: u64, mean: f64) -> f64 {
    let u = unit_at(seed, index);
    // Guard the log: u is in [0,1), so 1-u is in (0,1].
    -mean * (1.0 - u).ln()
}

/// A seeded stateful generator: a SplitMix64 counter stream.
///
/// Successive calls walk an internal counter through [`splitmix64`], so
/// the stream is exactly reproducible from its seed on every platform.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator for `seed`.
    pub fn new(seed: u64) -> Self {
        // Pre-mix so nearby seeds do not yield correlated first draws.
        Rng64 {
            state: splitmix64(seed ^ 0x1656_7A09_B5A3_E6D1),
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn next_range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "range bound must be positive");
        // Multiply-shift rejection-free mapping; bias is < 2^-53 for the
        // bounds used here (node counts), far below observable effect.
        (self.next_unit() * bound as f64) as usize % bound
    }
}

/// Builds a seeded [`Rng64`]; the standard entry point for all stateful
/// randomness in the workspace so seeds are visible in one place.
pub fn std_rng(seed: u64) -> Rng64 {
    Rng64::new(seed)
}

/// Derives an independent child seed, e.g. one per node of a testbed.
#[inline]
pub fn child_seed(seed: u64, label: u64) -> u64 {
    splitmix64(seed ^ label.wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn unit_values_lie_in_unit_interval() {
        for i in 0..10_000u64 {
            let u = unit_at(7, i);
            assert!((0.0..1.0).contains(&u), "u={u} at i={i}");
        }
    }

    #[test]
    fn unit_values_are_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| unit_at(99, i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn exp_values_match_requested_mean() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| exp_at(3, i, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
        assert!((0..n).all(|i| exp_at(3, i, 2.0) >= 0.0));
    }

    #[test]
    fn child_seeds_differ_per_label() {
        let parents = child_seed(1, 0);
        assert_ne!(parents, child_seed(1, 1));
        assert_eq!(child_seed(1, 5), child_seed(1, 5));
    }

    #[test]
    fn std_rng_reproducible() {
        let a: u64 = std_rng(11).next_u64();
        let b: u64 = std_rng(11).next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn rng64_range_is_in_bounds_and_covers() {
        let mut rng = Rng64::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_range(7);
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn rng64_units_are_roughly_uniform() {
        let mut rng = Rng64::new(17);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
