//! Runs every repro binary in sequence — the one-command regeneration of
//! the full evaluation. Each sub-experiment is a separate process so a
//! failure cannot corrupt the others' output.
//!
//! `cargo run --release -p adapipe-bench --bin repro_all`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "repro_t1", "repro_t2", "repro_f1", "repro_f2", "repro_f3", "repro_f4", "repro_t3", "repro_f5",
    "repro_f6", "repro_t4", "repro_a1", "repro_a2",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin directory");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n################ {name} ################\n");
        let status = Command::new(bin_dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("{name} FAILED with {status}");
            failures.push(*name);
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
