//! Figure 1 — throughput over time under a load step.
//!
//! A 4-stage pipeline, open-loop arrivals at 80 % of nominal capacity.
//! At t = 60 s the node hosting the heaviest share of work collapses to
//! 15 % availability. Series: static / reactive / adaptive / oracle.

use adapipe_bench::{banner, Table};
use adapipe_core::prelude::*;
use adapipe_core::simengine::run as sim_run;
use adapipe_gridsim::prelude::*;
use adapipe_mapper::prelude::*;

fn main() {
    banner(
        "F1",
        "throughput timeline across a load step (static/reactive/adaptive/oracle)",
        "all curves level until t=60s; static stays collapsed afterwards; \
         adaptive recovers within one adaptation period of the oracle",
    );

    // 4 equal nodes; the step hits node 1.
    let mk_grid = || {
        let nodes = (0..4)
            .map(|i| Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), LoadModel::free()))
            .collect();
        let mut grid = GridSpec::new(nodes, Topology::uniform(4, LinkSpec::lan()));
        FaultPlan::new()
            .slowdown(
                NodeId(1),
                SimTime::from_secs_f64(60.0),
                SimTime::from_secs_f64(1e6),
                0.15,
            )
            .apply(&mut grid);
        grid
    };

    let spec = PipelineSpec::balanced(4, 1.0, 10_000);
    let mapping = Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    let interval = SimDuration::from_secs(5);
    let duration_s = 240.0;
    let rate = 0.8; // items/s, below the nominal capacity of 1.0
    let items = (duration_s * rate) as u64;

    let policies = [
        Policy::Static,
        Policy::Reactive {
            interval,
            degradation: 0.7,
        },
        Policy::Periodic { interval },
        Policy::Oracle { interval },
    ];

    let bucket = SimDuration::from_secs(10);
    type Series = (String, Vec<(SimTime, f64)>, usize);
    let mut series: Vec<Series> = Vec::new();
    for policy in policies {
        let grid = mk_grid();
        let cfg = SimConfig {
            items,
            arrivals: ArrivalProcess::Uniform { rate },
            policy,
            initial_mapping: Some(mapping.clone()),
            timeline_bucket: bucket,
            ..SimConfig::default()
        };
        let report = sim_run(&grid, &spec, &cfg);
        series.push((
            policy.name().to_string(),
            report.timeline.series(),
            report.adaptation_count(),
        ));
    }

    let mut table = Table::new(&["t(s)", "static", "reactive", "adaptive", "oracle"]);
    let buckets = series.iter().map(|(_, s, _)| s.len()).max().unwrap_or(0);
    for b in 0..buckets {
        let t = (b as f64 + 0.5) * bucket.as_secs_f64();
        let cell = |idx: usize| -> String {
            series[idx]
                .1
                .get(b)
                .map(|&(_, v)| format!("{v:.2}"))
                .unwrap_or_else(|| "-".to_string())
        };
        table.row(vec![format!("{t:.0}"), cell(0), cell(1), cell(2), cell(3)]);
    }
    table.print();
    for (name, _, remaps) in &series {
        println!("{name:>9}: {remaps} re-mappings");
    }
}
