//! Re-mapping decisions: hysteresis and cost/benefit analysis.
//!
//! Finding a better mapping is necessary but not sufficient: migrating
//! stages costs time (state transfer, pipeline drain), and on a volatile
//! grid a naive controller oscillates ("thrashes") between mappings,
//! losing more to migration than adaptation gains. The decision rule
//! implemented here re-maps only when
//!
//! 1. the predicted throughput gain is at least `min_relative_gain`, and
//! 2. the predicted time saved on the *remaining* stream exceeds the
//!    migration cost by `cost_benefit_factor`.

use crate::model::Prediction;

/// Tunables for [`should_remap`].
#[derive(Clone, Copy, Debug)]
pub struct DecisionConfig {
    /// Minimum relative throughput improvement (e.g. `0.1` = 10 %).
    pub min_relative_gain: f64,
    /// Require `saved_time ≥ factor × migration_cost`.
    pub cost_benefit_factor: f64,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        DecisionConfig {
            min_relative_gain: 0.10,
            cost_benefit_factor: 2.0,
        }
    }
}

/// Outcome of a re-mapping evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum Decision {
    /// Keep the current mapping.
    Keep {
        /// Why the candidate was rejected.
        reason: KeepReason,
    },
    /// Switch to the candidate mapping.
    Remap {
        /// Predicted wall-clock seconds saved on the remaining stream,
        /// net of migration cost.
        net_gain_seconds: f64,
        /// Candidate ÷ current predicted throughput.
        speedup: f64,
    },
}

/// Why a candidate mapping was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeepReason {
    /// The candidate is no better (or worse) than the current mapping.
    NoImprovement,
    /// Improvement below the hysteresis threshold.
    BelowThreshold,
    /// Improvement real but migration would cost more than it saves on
    /// the remaining stream.
    NotWorthMigration,
    /// Nothing left to process; adaptation is pointless.
    StreamExhausted,
}

/// Decides whether to migrate from `current` to `candidate` given
/// `remaining_items` still to process and an estimated one-off
/// `migration_seconds`.
pub fn should_remap(
    current: &Prediction,
    candidate: &Prediction,
    remaining_items: u64,
    migration_seconds: f64,
    config: &DecisionConfig,
) -> Decision {
    if remaining_items == 0 {
        return Decision::Keep {
            reason: KeepReason::StreamExhausted,
        };
    }
    if candidate.throughput <= current.throughput {
        return Decision::Keep {
            reason: KeepReason::NoImprovement,
        };
    }
    // current.throughput may be 0 (dead mapping): any finite candidate is
    // then infinitely better and must pass the threshold.
    let speedup = if current.throughput > 0.0 {
        candidate.throughput / current.throughput
    } else {
        f64::INFINITY
    };
    if speedup - 1.0 < config.min_relative_gain {
        return Decision::Keep {
            reason: KeepReason::BelowThreshold,
        };
    }
    let remaining = remaining_items as f64;
    let current_time = if current.throughput > 0.0 {
        remaining / current.throughput
    } else {
        f64::INFINITY
    };
    let candidate_time = remaining / candidate.throughput + migration_seconds;
    let net_gain_seconds = current_time - candidate_time;
    // NaN-safe: any non-comparable value must fail the gate.
    let worthwhile = net_gain_seconds >= config.cost_benefit_factor * migration_seconds;
    if !worthwhile {
        return Decision::Keep {
            reason: KeepReason::NotWorthMigration,
        };
    }
    Decision::Remap {
        net_gain_seconds,
        speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Bottleneck;
    use adapipe_gridsim::node::NodeId;

    fn pred(throughput: f64) -> Prediction {
        Prediction {
            throughput,
            latency: 1.0,
            bottleneck: Bottleneck::Node(NodeId(0)),
            node_load: vec![],
        }
    }

    #[test]
    fn clear_win_remaps() {
        let d = should_remap(
            &pred(1.0),
            &pred(2.0),
            1000,
            5.0,
            &DecisionConfig::default(),
        );
        match d {
            Decision::Remap {
                net_gain_seconds,
                speedup,
            } => {
                // 1000 s now vs 500 + 5 s after: net 495 s.
                assert!((net_gain_seconds - 495.0).abs() < 1e-9);
                assert!((speedup - 2.0).abs() < 1e-12);
            }
            other => panic!("expected remap, got {other:?}"),
        }
    }

    #[test]
    fn no_improvement_keeps() {
        let d = should_remap(
            &pred(2.0),
            &pred(2.0),
            1000,
            0.0,
            &DecisionConfig::default(),
        );
        assert_eq!(
            d,
            Decision::Keep {
                reason: KeepReason::NoImprovement
            }
        );
        let d2 = should_remap(
            &pred(2.0),
            &pred(1.0),
            1000,
            0.0,
            &DecisionConfig::default(),
        );
        assert_eq!(
            d2,
            Decision::Keep {
                reason: KeepReason::NoImprovement
            }
        );
    }

    #[test]
    fn small_gain_below_threshold_keeps() {
        // 5 % gain < 10 % threshold.
        let d = should_remap(
            &pred(1.0),
            &pred(1.05),
            10_000,
            0.0,
            &DecisionConfig::default(),
        );
        assert_eq!(
            d,
            Decision::Keep {
                reason: KeepReason::BelowThreshold
            }
        );
    }

    #[test]
    fn short_remaining_stream_rejects_migration() {
        // Candidate is 2× better, but only 4 items remain and migration
        // costs 10 s: 4 s now vs 2 + 10 s after.
        let d = should_remap(&pred(1.0), &pred(2.0), 4, 10.0, &DecisionConfig::default());
        assert_eq!(
            d,
            Decision::Keep {
                reason: KeepReason::NotWorthMigration
            }
        );
    }

    #[test]
    fn exhausted_stream_keeps() {
        let d = should_remap(&pred(1.0), &pred(100.0), 0, 0.0, &DecisionConfig::default());
        assert_eq!(
            d,
            Decision::Keep {
                reason: KeepReason::StreamExhausted
            }
        );
    }

    #[test]
    fn dead_current_mapping_always_remaps() {
        let d = should_remap(
            &pred(0.0),
            &pred(0.5),
            10,
            100.0,
            &DecisionConfig::default(),
        );
        assert!(matches!(d, Decision::Remap { .. }), "got {d:?}");
    }

    #[test]
    fn cost_benefit_factor_scales_bar() {
        let strict = DecisionConfig {
            min_relative_gain: 0.1,
            cost_benefit_factor: 50.0,
        };
        // Net gain 495 s < 50 × 10 s.
        let d = should_remap(&pred(1.0), &pred(2.0), 1000, 10.0, &strict);
        assert_eq!(
            d,
            Decision::Keep {
                reason: KeepReason::NotWorthMigration
            }
        );
        let lax = DecisionConfig {
            min_relative_gain: 0.1,
            cost_benefit_factor: 1.0,
        };
        assert!(matches!(
            should_remap(&pred(1.0), &pred(2.0), 1000, 10.0, &lax),
            Decision::Remap { .. }
        ));
    }

    #[test]
    fn free_migration_with_real_gain_remaps() {
        let d = should_remap(&pred(1.0), &pred(1.2), 100, 0.0, &DecisionConfig::default());
        assert!(matches!(d, Decision::Remap { .. }));
    }
}
