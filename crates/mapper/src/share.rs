//! Cross-tenant capacity arbitration: split one pool's capacity among
//! concurrent pipeline sessions.
//!
//! A multi-tenant cluster runs many pipelines over one node pool; each
//! tenant declares a [`ShareQuota`] — a guaranteed floor (`min_share`),
//! a cap (`max_share`), and a `weight` for dividing what is left. Per
//! sensing window the cluster's arbiter measures every tenant's
//! *demand* (the capacity fraction the tenant could productively use)
//! and calls [`arbitrate`], which implements weighted progressive
//! filling (max-min fairness):
//!
//! 1. every active tenant is granted its `min_share` floor;
//! 2. the remaining capacity is poured over the unsatisfied tenants in
//!    proportion to their weights;
//! 3. a tenant whose grant reaches its demand or its `max_share` cap
//!    freezes there and its unused weight is re-poured over the rest.
//!
//! The result is the global objective of the cluster tentpole: the
//! weighted sum of per-tenant throughput is maximised subject to the
//! quota constraints, because capacity only ever sits idle when every
//! tenant is demand- or cap-limited. The returned shares drive both
//! *enforcement* (weighted-fair envelope admission at the worker
//! inboxes) and *planning* (each tenant's planner sees the pool scaled
//! by its share).

/// One tenant's capacity contract, as fractions of total pool capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShareQuota {
    /// Guaranteed floor: the tenant is always granted at least this
    /// fraction while active, even when others are saturated.
    pub min_share: f64,
    /// Cap: the tenant is never granted more than this fraction, even
    /// with the pool otherwise idle.
    pub max_share: f64,
    /// Relative weight for dividing capacity above the floors; only
    /// ratios matter.
    pub weight: f64,
}

impl Default for ShareQuota {
    /// No floor, no cap, unit weight — a best-effort tenant.
    fn default() -> Self {
        ShareQuota {
            min_share: 0.0,
            max_share: 1.0,
            weight: 1.0,
        }
    }
}

impl ShareQuota {
    /// A best-effort quota with the given weight.
    pub fn weighted(weight: f64) -> Self {
        ShareQuota {
            weight,
            ..Self::default()
        }
    }

    /// A quota bounded to `[min_share, max_share]` with unit weight.
    pub fn bounded(min_share: f64, max_share: f64) -> Self {
        ShareQuota {
            min_share,
            max_share,
            weight: 1.0,
        }
    }

    /// True if the quota is internally consistent: shares in `[0, 1]`,
    /// floor at or below cap, weight positive and finite.
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.min_share)
            && (0.0..=1.0).contains(&self.max_share)
            && self.min_share <= self.max_share
            && self.weight > 0.0
            && self.weight.is_finite()
    }
}

/// Floor below which a demand counts as "inactive": the tenant is
/// granted zero and its floor is released to the others.
const ACTIVE_DEMAND: f64 = 1e-12;

/// Numerical slack for progressive-filling convergence.
const EPS: f64 = 1e-9;

/// Splits one unit of pool capacity over tenants by weighted
/// progressive filling (see the module docs). `demand[i]` is the
/// capacity fraction tenant `i` could productively use this window;
/// `quotas[i]` its contract. Returns one share per tenant, each within
/// `[0, min(demand, max_share)] ∪ {min_share}`, summing to at most 1.
///
/// Floors are honoured even for demand-limited tenants (a tenant's
/// grant never falls below `min_share` while it is active), so a
/// briefly idle-looking tenant does not lose its guarantee between
/// windows. If the declared floors oversubscribe the pool (Σ min_share
/// of active tenants > 1) the floors themselves are scaled down
/// proportionally — the contract is infeasible and degrades gracefully
/// rather than panicking mid-run.
///
/// # Panics
/// Panics if the slices disagree in length or any quota is invalid
/// ([`ShareQuota::is_valid`]); quotas are validated at admission, so an
/// invalid one reaching arbitration is a caller bug.
pub fn arbitrate(demand: &[f64], quotas: &[ShareQuota]) -> Vec<f64> {
    assert_eq!(
        demand.len(),
        quotas.len(),
        "one demand entry per quota entry"
    );
    for (i, q) in quotas.iter().enumerate() {
        assert!(q.is_valid(), "invalid quota for tenant {i}: {q:?}");
    }
    let n = demand.len();
    let mut shares = vec![0.0f64; n];
    if n == 0 {
        return shares;
    }
    // An inactive tenant (no demand) takes nothing and frees its floor.
    let active: Vec<usize> = (0..n)
        .filter(|&i| demand[i].is_finite() && demand[i] > ACTIVE_DEMAND || demand[i].is_infinite())
        .collect();
    if active.is_empty() {
        return shares;
    }
    // Oversubscribed floors: scale every floor down proportionally.
    let floor_sum: f64 = active.iter().map(|&i| quotas[i].min_share).sum();
    let floor_scale = if floor_sum > 1.0 {
        1.0 / floor_sum
    } else {
        1.0
    };

    // Each tenant's target: what it would take unconstrained — demand,
    // but never above its cap and never below its (scaled) floor.
    let target: Vec<f64> = (0..n)
        .map(|i| {
            if !active.contains(&i) {
                return 0.0;
            }
            let floor = quotas[i].min_share * floor_scale;
            demand[i].min(quotas[i].max_share).max(floor)
        })
        .collect();

    // Progressive filling: grant floors, then pour the remainder over
    // unsatisfied tenants by weight, freezing each as it hits its
    // target and re-pouring its unused weight. Terminates in ≤ n
    // rounds (every round freezes at least one tenant or exhausts the
    // pool).
    for &i in &active {
        shares[i] = quotas[i].min_share * floor_scale;
    }
    let mut remaining = 1.0 - shares.iter().sum::<f64>();
    let mut open: Vec<usize> = active
        .iter()
        .copied()
        .filter(|&i| target[i] - shares[i] > EPS)
        .collect();
    while remaining > EPS && !open.is_empty() {
        let weight_sum: f64 = open.iter().map(|&i| quotas[i].weight).sum();
        let mut froze = false;
        let mut poured = 0.0;
        for &i in &open {
            let offer = remaining * quotas[i].weight / weight_sum;
            let take = offer.min(target[i] - shares[i]);
            shares[i] += take;
            poured += take;
            if target[i] - shares[i] <= EPS {
                froze = true;
            }
        }
        remaining -= poured;
        if froze {
            open.retain(|&i| target[i] - shares[i] > EPS);
        } else {
            // Nobody froze: every open tenant absorbed its full offer,
            // so the pool is exhausted up to rounding.
            break;
        }
    }
    shares
}

/// The static fair split: what [`arbitrate`] grants when every tenant
/// demands the whole pool. Used where per-window demand sensing is
/// unavailable (e.g. the deterministic simulator backend).
pub fn fair_shares(quotas: &[ShareQuota]) -> Vec<f64> {
    arbitrate(&vec![f64::INFINITY; quotas.len()], quotas)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn equal_tenants_split_evenly() {
        let q = vec![ShareQuota::default(); 4];
        let s = arbitrate(&[1.0; 4], &q);
        assert!(s.iter().all(|&x| close(x, 0.25)), "{s:?}");
        assert!(close(s.iter().sum::<f64>(), 1.0));
    }

    #[test]
    fn weights_divide_the_surplus() {
        let q = vec![ShareQuota::weighted(3.0), ShareQuota::weighted(1.0)];
        let s = arbitrate(&[1.0, 1.0], &q);
        assert!(close(s[0], 0.75) && close(s[1], 0.25), "{s:?}");
    }

    #[test]
    fn demand_limited_tenant_releases_capacity() {
        // Tenant 0 only wants 10%; tenant 1 absorbs the rest.
        let q = vec![ShareQuota::default(); 2];
        let s = arbitrate(&[0.1, 1.0], &q);
        assert!(close(s[0], 0.1) && close(s[1], 0.9), "{s:?}");
    }

    #[test]
    fn max_share_caps_a_greedy_tenant() {
        let q = vec![ShareQuota::bounded(0.0, 0.3), ShareQuota::default()];
        let s = arbitrate(&[1.0, 1.0], &q);
        assert!(close(s[0], 0.3) && close(s[1], 0.7), "{s:?}");
    }

    #[test]
    fn min_share_guarantees_a_floor_under_pressure() {
        // A heavy co-tenant cannot push tenant 0 under its floor.
        let q = vec![ShareQuota::bounded(0.4, 1.0), ShareQuota::weighted(100.0)];
        let s = arbitrate(&[1.0, 1.0], &q);
        assert!(s[0] >= 0.4 - 1e-9, "{s:?}");
        assert!(close(s.iter().sum::<f64>(), 1.0));
    }

    #[test]
    fn floor_holds_even_when_demand_is_below_it() {
        // An active tenant demanding less than its floor keeps the
        // floor — guarantees do not evaporate on a quiet window.
        let q = vec![ShareQuota::bounded(0.5, 1.0), ShareQuota::default()];
        let s = arbitrate(&[0.01, 1.0], &q);
        assert!(close(s[0], 0.5), "{s:?}");
        assert!(close(s[1], 0.5), "{s:?}");
    }

    #[test]
    fn inactive_tenant_takes_nothing_and_frees_its_floor() {
        let q = vec![ShareQuota::bounded(0.5, 1.0), ShareQuota::default()];
        let s = arbitrate(&[0.0, 1.0], &q);
        assert!(close(s[0], 0.0) && close(s[1], 1.0), "{s:?}");
    }

    #[test]
    fn oversubscribed_floors_scale_down_proportionally() {
        let q = vec![ShareQuota::bounded(0.8, 1.0), ShareQuota::bounded(0.8, 1.0)];
        let s = arbitrate(&[1.0, 1.0], &q);
        assert!(close(s[0], 0.5) && close(s[1], 0.5), "{s:?}");
        assert!(s.iter().sum::<f64>() <= 1.0 + 1e-9);
    }

    #[test]
    fn shares_never_exceed_the_pool() {
        let q = vec![
            ShareQuota::weighted(5.0),
            ShareQuota::bounded(0.2, 0.6),
            ShareQuota::default(),
        ];
        for demands in [[1.0, 1.0, 1.0], [0.5, 0.1, 0.9], [0.0, 1.0, 0.0]] {
            let s = arbitrate(&demands, &q);
            assert!(s.iter().sum::<f64>() <= 1.0 + 1e-9, "{demands:?} -> {s:?}");
            for (i, &x) in s.iter().enumerate() {
                assert!(x <= q[i].max_share + 1e-9, "{demands:?} -> {s:?}");
            }
        }
    }

    #[test]
    fn fair_shares_is_the_all_saturated_split() {
        let q = vec![ShareQuota::weighted(1.0), ShareQuota::weighted(3.0)];
        let s = fair_shares(&q);
        assert!(close(s[0], 0.25) && close(s[1], 0.75), "{s:?}");
    }

    #[test]
    fn single_tenant_gets_the_whole_pool() {
        let s = arbitrate(&[1.0], &[ShareQuota::default()]);
        assert!(close(s[0], 1.0), "{s:?}");
    }

    #[test]
    fn empty_cluster_arbitrates_to_nothing() {
        assert!(arbitrate(&[], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid quota")]
    fn invalid_quota_is_rejected() {
        let q = ShareQuota {
            min_share: 0.9,
            max_share: 0.1,
            weight: 1.0,
        };
        arbitrate(&[1.0], &[q]);
    }

    #[test]
    #[should_panic(expected = "one demand entry per quota")]
    fn mismatched_lengths_are_rejected() {
        arbitrate(&[1.0], &[]);
    }
}
