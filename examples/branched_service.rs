//! A branched imaging service: the series-parallel pipeline shape.
//!
//! One decoded frame fans out to two branches that genuinely run in
//! parallel — `analyze` extracts metadata while `thumbnail` renders a
//! preview — and a deterministic `pack` merge folds the pair (always in
//! branch order) back into one shipped record:
//!
//! ```text
//!            ┌─ analyze ──┐
//!  decode ──▶│            ├──▶ pack ──▶ out
//!            └─ thumbnail ┘
//! ```
//!
//! The planner sees the real graph: the bottleneck is the slowest
//! *parallel path*, not the sum of all stages, and each branch carries
//! its own replication bounds. Run with:
//!
//! ```sh
//! cargo run --release --example branched_service
//! ```

use adapipe::prelude::*;
use std::time::Duration;

/// A decoded frame, cloned into every branch at the fan-out.
#[derive(Clone, Debug)]
struct Frame {
    id: u64,
    pixels: u64,
}

/// What a branch produces; the merge receives one per branch, in branch
/// order (analyze first, thumbnail second).
#[derive(Clone, Debug)]
enum Artifact {
    Meta { id: u64, brightness: u64 },
    Thumb { id: u64, bytes: u64 },
}

fn main() {
    const ITEMS: u64 = 120;

    let pipeline = Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("decode", 0.002, 1 << 20), |id: u64| {
            spin_for(Duration::from_millis(2));
            Frame {
                id,
                pixels: 64 + id % 7,
            }
        })
        .parallel(vec![
            Branch::new().stage_with(StageSpec::balanced("analyze", 0.004, 256), |f: Frame| {
                spin_for(Duration::from_millis(4));
                Artifact::Meta {
                    id: f.id,
                    brightness: f.pixels * 3,
                }
            }),
            Branch::new()
                .stage_with(
                    StageSpec::balanced("thumbnail", 0.004, 16 << 10),
                    |f: Frame| {
                        spin_for(Duration::from_millis(4));
                        Artifact::Thumb {
                            id: f.id,
                            bytes: f.pixels / 2,
                        }
                    },
                )
                .replicas(2), // the thumbnail farm may spread 2 wide, no wider
        ])
        .merge_with(
            StageSpec::balanced("pack", 0.001, 1024),
            |outs: Vec<Artifact>| match (&outs[0], &outs[1]) {
                (Artifact::Meta { id, brightness }, Artifact::Thumb { id: tid, bytes }) => {
                    assert_eq!(id, tid, "a join must never mix frames");
                    format!("frame {id}: brightness={brightness} thumb={bytes}B")
                }
                other => panic!("merge received branches out of order: {other:?}"),
            },
        )
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(150),
        })
        .feed(|i| i)
        .build()
        .expect("valid branched pipeline");

    assert!(!pipeline.spec().graph.is_linear());
    println!(
        "running {} stages over a {}-block stage graph on 4 vnodes…",
        pipeline.len(),
        pipeline.spec().graph.blocks()
    );

    let vnodes: Vec<VNodeSpec> = (0..4).map(|i| VNodeSpec::free(format!("v{i}"))).collect();
    let handle = pipeline
        .run(
            Backend::Threads(vnodes),
            RunConfig {
                items: ITEMS,
                ..RunConfig::default()
            },
        )
        .expect("threaded run");

    assert_eq!(handle.report.completed, ITEMS, "items were lost");
    assert!(handle.error.is_none(), "run failed: {:?}", handle.error);
    assert_eq!(handle.outputs.len() as u64, ITEMS);
    // Deterministic merged outputs, in push order (preserve_order).
    for (i, line) in handle.outputs.iter().enumerate() {
        let expect = format!(
            "frame {i}: brightness={} thumb={}B",
            (64 + i as u64 % 7) * 3,
            (64 + i as u64 % 7) / 2
        );
        assert_eq!(line, &expect, "frame {i} merged wrongly");
    }

    println!("first: {}", handle.outputs.first().expect("non-empty"));
    println!("last:  {}", handle.outputs.last().expect("non-empty"));
    println!(
        "completed {} frames in {:.3}s (final mapping {})",
        handle.report.completed,
        handle.report.makespan.as_secs_f64(),
        handle.report.final_mapping,
    );
    println!("branched service OK");
}
