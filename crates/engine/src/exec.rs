//! The threaded execution engine.
//!
//! One worker thread per virtual node; items travel as type-erased
//! envelopes through unbounded channels. A worker receiving an envelope
//! for a stage it no longer hosts forwards it according to the shared
//! routing table, so the controller can re-map a *running* pipeline by
//! swapping that table — the same drain-and-forward semantics the
//! simulator models.
//!
//! Stage instances live in a depot: stateless stages are replicated from
//! a prototype on first use per worker; stateful stages exist exactly
//! once and physically move between workers on migration (the old host
//! deposits the instance when it processes the controller's
//! `Relinquish`; the new host picks it up, buffering items meanwhile).
//!
//! Ordering: with `preserve_order` (default) the collector resequences
//! outputs by item index. During a migration window a *stateful* stage
//! may observe items slightly out of sequence order (items forwarded
//! from the old host race items routed directly to the new one) — the
//! same asynchrony a real grid deployment exhibits; applications needing
//! strict per-stage sequencing should use stateless stages plus a fold
//! at the sink.

use crate::vnode::VNodeSpec;
use adapipe_core::controller::{Controller, ControllerConfig};
use adapipe_core::pipeline::Pipeline;
use adapipe_core::policy::Policy;
use adapipe_core::report::RunReport;
use adapipe_core::spec::PipelineSpec;
use adapipe_core::stage::{BoxedItem, DynStage};
use adapipe_gridsim::net::{LinkSpec, Topology};
use adapipe_gridsim::time::{SimDuration, SimTime};
use adapipe_gridsim::trace::ThroughputTimeline;
use adapipe_mapper::mapping::Mapping;
use adapipe_mapper::model::evaluate;
use adapipe_monitor::sensor::NoisyChannel;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Threaded-engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The virtual nodes (one worker thread each).
    pub vnodes: Vec<VNodeSpec>,
    /// Adaptation policy (intervals are interpreted as wall time).
    pub policy: Policy,
    /// Controller tunables.
    pub controller: ControllerConfig,
    /// Launch mapping; `None` plans from availability at start.
    pub initial_mapping: Option<Mapping>,
    /// Resequence outputs by item index (the `Pipeline1for1` contract).
    pub preserve_order: bool,
    /// Input pacing in items per second (`None` = feed as fast as
    /// possible).
    pub pacing_rate: Option<f64>,
    /// Topology used for *planning* (the box itself has uniform cheap
    /// links); `None` = uniform local links.
    pub topology: Option<Topology>,
    /// Relative availability observation noise.
    pub observation_noise: f64,
    /// Noise stream seed.
    pub noise_seed: u64,
    /// Timeline bucket width.
    pub timeline_bucket: SimDuration,
    /// Emulate network cost on stage boundaries: before handing an item
    /// to a *different* vnode, the sending worker sleeps the planning
    /// topology's transfer time for the boundary's declared bytes
    /// (NIC-serialisation semantics). Off by default: a single box has
    /// no real network, and the planner then treats links as free.
    pub emulate_links: bool,
}

impl EngineConfig {
    /// A sensible default over the given virtual nodes.
    pub fn new(vnodes: Vec<VNodeSpec>) -> Self {
        assert!(!vnodes.is_empty(), "engine needs at least one vnode");
        EngineConfig {
            vnodes,
            policy: Policy::Static,
            controller: ControllerConfig::default(),
            initial_mapping: None,
            preserve_order: true,
            pacing_rate: None,
            topology: None,
            observation_noise: 0.0,
            noise_seed: 1,
            timeline_bucket: SimDuration::from_millis(500),
            emulate_links: false,
        }
    }
}

/// Result of a threaded run: typed outputs plus the standard report.
pub struct EngineOutcome<O> {
    /// Pipeline outputs (resequenced if `preserve_order`).
    pub outputs: Vec<O>,
    /// Run metrics in the same shape the simulator reports (times are
    /// wall-clock seconds since engine start).
    pub report: RunReport,
}

struct Envelope {
    seq: u64,
    stage: usize,
    born: Instant,
    payload: BoxedItem,
}

enum Msg {
    Work(Envelope),
    /// Deposit the (stateful) instance of `stage` back into the depot.
    Relinquish {
        stage: usize,
    },
    Shutdown,
}

struct Finished {
    seq: u64,
    born: Instant,
    done: Instant,
    payload: BoxedItem,
}

/// Everything workers share.
struct Shared {
    spec: PipelineSpec,
    vnodes: Vec<VNodeSpec>,
    /// Planning topology; also drives link emulation when enabled.
    topology: Topology,
    emulate_links: bool,
    routing: RwLock<Mapping>,
    /// Per stage: prototype (stateless) or the unique instance (stateful).
    depot: Vec<Mutex<Option<Box<dyn DynStage>>>>,
    senders: Vec<Sender<Msg>>,
    sink: Sender<Finished>,
    epoch: Instant,
    completed: AtomicU64,
    done: AtomicBool,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.epoch.elapsed().as_secs_f64())
    }
}

/// Runs `pipeline` over `inputs` on the configured virtual nodes.
///
/// # Panics
/// Panics if the initial mapping references unknown nodes or covers the
/// wrong number of stages.
pub fn run_pipeline<I, O>(
    pipeline: Pipeline<I, O>,
    inputs: Vec<I>,
    cfg: &EngineConfig,
) -> EngineOutcome<O>
where
    I: Send + 'static,
    O: Send + 'static,
{
    let np = cfg.vnodes.len();
    assert!(np > 0, "engine needs at least one vnode");
    let (spec, stages) = pipeline.into_parts();
    let ns = spec.len();
    let n_items = inputs.len() as u64;

    let topology = cfg
        .topology
        .clone()
        .unwrap_or_else(|| Topology::uniform(np, LinkSpec::local()));
    assert_eq!(topology.len(), np, "topology must cover every vnode");

    let profile = spec.profile();
    let speeds: Vec<f64> = cfg.vnodes.iter().map(|v| v.speed).collect();
    let rates_at_start: Vec<f64> = cfg
        .vnodes
        .iter()
        .map(|v| v.effective_rate(SimTime::ZERO))
        .collect();
    let initial_mapping = cfg.initial_mapping.clone().unwrap_or_else(|| {
        adapipe_mapper::search::plan(
            &profile,
            &rates_at_start,
            &topology,
            &cfg.controller.planner,
        )
        .mapping
    });
    assert_eq!(initial_mapping.len(), ns, "mapping must cover every stage");
    for node in initial_mapping.nodes_used() {
        assert!(
            node.index() < np,
            "mapping uses vnode {node} outside the engine"
        );
    }

    let (sink_tx, sink_rx) = unbounded::<Finished>();
    let mut senders = Vec::with_capacity(np);
    let mut inboxes = Vec::with_capacity(np);
    for _ in 0..np {
        let (tx, rx) = unbounded::<Msg>();
        senders.push(tx);
        inboxes.push(rx);
    }

    let shared = Arc::new(Shared {
        depot: stages.into_iter().map(|s| Mutex::new(Some(s))).collect(),
        spec,
        vnodes: cfg.vnodes.clone(),
        topology: topology.clone(),
        emulate_links: cfg.emulate_links,
        routing: RwLock::new(initial_mapping.clone()),
        senders,
        sink: sink_tx,
        epoch: Instant::now(),
        completed: AtomicU64::new(0),
        done: AtomicBool::new(false),
    });

    // --- workers -----------------------------------------------------
    let mut workers = Vec::with_capacity(np);
    for (me, inbox) in inboxes.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        workers.push(std::thread::spawn(move || worker_loop(me, inbox, shared)));
    }

    // --- source ------------------------------------------------------
    let source = {
        let shared = Arc::clone(&shared);
        let pacing = cfg.pacing_rate;
        std::thread::spawn(move || {
            for (seq, input) in inputs.into_iter().enumerate() {
                if let Some(rate) = pacing {
                    let due = shared.epoch + Duration::from_secs_f64(seq as f64 / rate);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                }
                let dest = {
                    let routing = shared.routing.read();
                    let hosts = routing.placement(0).hosts();
                    // Items are dealt round-robin over stage 0's replicas;
                    // the sequence number is exactly that counter.
                    hosts[seq % hosts.len()].index()
                };
                let env = Envelope {
                    seq: seq as u64,
                    stage: 0,
                    born: Instant::now(),
                    payload: Box::new(input),
                };
                // Worker channels outlive the source; send only fails at
                // teardown, by which point delivery no longer matters.
                let _ = shared.senders[dest].send(Msg::Work(env));
            }
        })
    };

    // --- collector -----------------------------------------------------
    let collector = {
        let shared = Arc::clone(&shared);
        let preserve = cfg.preserve_order;
        let bucket = cfg.timeline_bucket;
        std::thread::spawn(move || {
            let mut timeline = ThroughputTimeline::new(bucket);
            let mut latency_sum = 0.0f64;
            let mut latencies: Vec<SimDuration> = Vec::with_capacity(n_items as usize);
            let mut last_completion = SimTime::ZERO;
            let mut outputs: Vec<(u64, BoxedItem)> = Vec::with_capacity(n_items as usize);
            for _ in 0..n_items {
                let Ok(fin) = sink_rx.recv() else { break };
                let at =
                    SimTime::from_secs_f64(fin.done.duration_since(shared.epoch).as_secs_f64());
                timeline.record(at);
                if at > last_completion {
                    last_completion = at;
                }
                let latency = fin.done.duration_since(fin.born).as_secs_f64();
                latency_sum += latency;
                latencies.push(SimDuration::from_secs_f64(latency));
                shared.completed.fetch_add(1, Ordering::Relaxed);
                outputs.push((fin.seq, fin.payload));
            }
            if preserve {
                outputs.sort_by_key(|&(seq, _)| seq);
            }
            (outputs, timeline, latency_sum, latencies, last_completion)
        })
    };

    // --- controller ----------------------------------------------------
    let controller_handle = {
        let shared = Arc::clone(&shared);
        let policy = cfg.policy;
        let controller_cfg = cfg.controller.clone();
        let topology = topology.clone();
        let speeds = speeds.clone();
        let noise_cfg = (cfg.observation_noise, cfg.noise_seed);
        std::thread::spawn(move || {
            controller_loop(
                shared,
                policy,
                controller_cfg,
                topology,
                profile,
                speeds,
                n_items,
                noise_cfg,
            )
        })
    };

    // --- teardown ------------------------------------------------------
    let (outputs, timeline, latency_sum, latencies, last_completion) =
        collector.join().expect("collector panicked");
    shared.done.store(true, Ordering::SeqCst);
    for tx in &shared.senders {
        let _ = tx.send(Msg::Shutdown);
    }
    source.join().expect("source panicked");
    let mut node_busy = vec![SimDuration::ZERO; np];
    let mut stage_metrics = adapipe_core::metrics::StageMetrics::new(ns);
    for (i, w) in workers.into_iter().enumerate() {
        let (busy, worker_metrics) = w.join().expect("worker panicked");
        node_busy[i] = SimDuration::from_secs_f64(busy.as_secs_f64());
        for (s, stats) in worker_metrics.stages().iter().enumerate() {
            // Merge by replaying the aggregate (count × mean) — exact
            // for mean/work, approximate for the variance, which reports
            // do not consume.
            if stats.count() > 0 {
                let mean = stats.mean_service().expect("count > 0");
                for _ in 0..stats.count() {
                    stage_metrics.record(s, mean, stats.work_done() / stats.count() as f64);
                }
            }
        }
    }
    let controller = controller_handle.join().expect("controller panicked");

    let completed = outputs.len() as u64;
    let final_mapping = shared.routing.read().clone();
    let planning_cycles = controller.plans_evaluated();
    let report = RunReport {
        completed,
        makespan: last_completion,
        mean_latency: if completed > 0 {
            SimDuration::from_secs_f64(latency_sum / completed as f64)
        } else {
            SimDuration::ZERO
        },
        latencies,
        timeline,
        adaptations: controller.into_events(),
        node_busy,
        final_mapping,
        planning_cycles,
        stage_metrics,
        truncated: completed < n_items,
    };
    let outputs = outputs
        .into_iter()
        .map(|(_, payload)| {
            *payload
                .downcast::<O>()
                .expect("pipeline output type mismatch")
        })
        .collect();
    EngineOutcome { outputs, report }
}

/// Worker body: serve envelopes, honour migrations, account busy time.
fn worker_loop(
    me: usize,
    inbox: Receiver<Msg>,
    shared: Arc<Shared>,
) -> (Duration, adapipe_core::metrics::StageMetrics) {
    let ns = shared.spec.len();
    let mut local: HashMap<usize, Box<dyn DynStage>> = HashMap::new();
    let mut waiting: HashMap<usize, VecDeque<Envelope>> = HashMap::new();
    let mut rr: Vec<usize> = vec![0; ns];
    let mut busy = Duration::ZERO;
    let mut metrics = adapipe_core::metrics::StageMetrics::new(ns);

    loop {
        // Serve any stage whose instance became available since we
        // buffered items for it.
        let waiting_stages: Vec<usize> = waiting
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&s, _)| s)
            .collect();
        for s in waiting_stages {
            if try_acquire(&shared, &mut local, s) {
                let queue = waiting.get_mut(&s).expect("stage has a waiting queue");
                while let Some(env) = queue.pop_front() {
                    let stage = env.stage;
                    let took = process_one(me, env, &shared, &mut local, &mut rr);
                    metrics.record(
                        stage,
                        SimDuration::from_secs_f64(took.as_secs_f64()),
                        shared.spec.stages[stage].work.mean(),
                    );
                    busy += took;
                }
            }
        }

        match inbox.recv_timeout(Duration::from_micros(500)) {
            Ok(Msg::Work(env)) => {
                let stage = env.stage;
                let hosted = shared
                    .routing
                    .read()
                    .placement(stage)
                    .contains(adapipe_gridsim::node::NodeId(me));
                if !hosted {
                    forward(&shared, me, env, &mut rr);
                    continue;
                }
                if waiting.get(&stage).is_some_and(|q| !q.is_empty())
                    || !try_acquire(&shared, &mut local, stage)
                {
                    waiting.entry(stage).or_default().push_back(env);
                    continue;
                }
                let took = process_one(me, env, &shared, &mut local, &mut rr);
                metrics.record(
                    stage,
                    SimDuration::from_secs_f64(took.as_secs_f64()),
                    shared.spec.stages[stage].work.mean(),
                );
                busy += took;
            }
            Ok(Msg::Relinquish { stage }) => {
                if let Some(inst) = local.remove(&stage) {
                    if !shared.spec.stages[stage].stateless {
                        shared.depot[stage].lock().replace(inst);
                    }
                    // Stateless replicas are simply dropped; the depot
                    // keeps the prototype.
                }
            }
            Ok(Msg::Shutdown) => break,
            Err(RecvTimeoutError::Timeout) => {
                if shared.done.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    (busy, metrics)
}

/// Ensures `local` holds an instance of `stage`; true on success.
fn try_acquire(
    shared: &Shared,
    local: &mut HashMap<usize, Box<dyn DynStage>>,
    stage: usize,
) -> bool {
    if local.contains_key(&stage) {
        return true;
    }
    let mut slot = shared.depot[stage].lock();
    if shared.spec.stages[stage].stateless {
        if let Some(proto) = slot.as_ref() {
            if let Some(replica) = proto.replicate() {
                local.insert(stage, replica);
                return true;
            }
        }
        false
    } else {
        match slot.take() {
            Some(inst) => {
                local.insert(stage, inst);
                true
            }
            None => false, // still held by the previous host
        }
    }
}

/// Runs one envelope through its stage, applies the synthetic slowdown,
/// and routes the result onward. Returns occupied (busy) time.
fn process_one(
    me: usize,
    env: Envelope,
    shared: &Shared,
    local: &mut HashMap<usize, Box<dyn DynStage>>,
    rr: &mut [usize],
) -> Duration {
    let stage = env.stage;
    let started_at = shared.now();
    let t0 = Instant::now();
    let inst = local
        .get_mut(&stage)
        .expect("instance acquired before process");
    let out = inst.process(env.payload);
    let compute = t0.elapsed();
    let sleep = shared.vnodes[me].slowdown_sleep(compute, started_at);
    if !sleep.is_zero() {
        std::thread::sleep(sleep);
    }

    let ns = shared.spec.len();
    if stage + 1 == ns {
        let _ = shared.sink.send(Finished {
            seq: env.seq,
            born: env.born,
            done: Instant::now(),
            payload: out,
        });
    } else {
        let env = Envelope {
            seq: env.seq,
            stage: stage + 1,
            born: env.born,
            payload: out,
        };
        forward(shared, me, env, rr);
    }
    compute + sleep
}

/// Sends `env` from vnode `from` to the current host of its stage
/// (round-robin over replicas). With link emulation the sender first
/// sleeps the topology's transfer time — NIC-serialisation semantics:
/// a worker cannot compute while its (virtual) NIC is shipping a frame.
fn forward(shared: &Shared, from: usize, env: Envelope, rr: &mut [usize]) {
    let dest = {
        let routing = shared.routing.read();
        let hosts = routing.placement(env.stage).hosts();
        let d = hosts[rr[env.stage] % hosts.len()].index();
        rr[env.stage] += 1;
        d
    };
    if shared.emulate_links && from != dest {
        let bytes = if env.stage == 0 {
            shared.spec.input_bytes
        } else {
            shared.spec.stages[env.stage - 1].out_bytes
        };
        let d = shared
            .topology
            .transfer_time(
                adapipe_gridsim::node::NodeId(from),
                adapipe_gridsim::node::NodeId(dest),
                bytes,
            )
            .as_secs_f64();
        if d > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(d));
        }
    }
    let _ = shared.senders[dest].send(Msg::Work(env));
}

/// The monitoring/adaptation thread.
#[allow(clippy::too_many_arguments)]
fn controller_loop(
    shared: Arc<Shared>,
    policy: Policy,
    controller_cfg: ControllerConfig,
    topology: Topology,
    profile: adapipe_mapper::model::PipelineProfile,
    speeds: Vec<f64>,
    n_items: u64,
    (noise_mag, noise_seed): (f64, u64),
) -> Controller {
    let np = shared.vnodes.len();
    let mut controller = Controller::new(np, controller_cfg);
    let Some(interval) = policy.interval() else {
        return controller; // static: nothing to do
    };
    let interval_wall = Duration::from_secs_f64(interval.as_secs_f64());
    let divisions = controller.config().samples_per_interval.max(1);
    let sample_wall = interval_wall / divisions;
    let mut noise = if noise_mag > 0.0 {
        NoisyChannel::new(noise_seed, noise_mag)
    } else {
        NoisyChannel::clean()
    };
    let mut expected_tput = {
        let mapping = shared.routing.read().clone();
        let rates: Vec<f64> = shared
            .vnodes
            .iter()
            .map(|v| v.effective_rate(SimTime::ZERO))
            .collect();
        evaluate(&profile, &mapping, &rates, &topology).throughput
    };
    let mut last_completed = 0u64;
    let mut ticks_seen = 0u32;
    let warmup = controller.config().warmup_ticks;
    let state_bytes: Vec<u64> = shared.spec.stages.iter().map(|s| s.state_bytes).collect();

    let sample_ns = SimDuration::from_secs_f64(sample_wall.as_secs_f64()).as_nanos();
    let mut next_wake = Instant::now() + sample_wall;
    let mut rounds: u32 = 0;
    loop {
        // Sleep in short slices so shutdown is prompt.
        while Instant::now() < next_wake {
            if shared.done.load(Ordering::Relaxed) {
                return controller;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        next_wake += sample_wall;
        if shared.done.load(Ordering::Relaxed) {
            return controller;
        }

        let now = shared.now();
        let now_secs = now.as_secs_f64();
        // Mean availability over the elapsed sample window (see the
        // simulator's on_sample for why point samples alias badly).
        let window_start = SimTime::from_nanos(now.as_nanos().saturating_sub(sample_ns));
        for (i, v) in shared.vnodes.iter().enumerate() {
            let truth = if window_start < now {
                v.load.mean_availability(window_start, now)
            } else {
                v.load.availability(now)
            };
            controller.observe_availability(i, now_secs, noise.perturb(truth).clamp(0.0, 1.0));
        }
        rounds += 1;
        if !rounds.is_multiple_of(divisions) {
            continue; // sensing round only; planning happens per interval
        }

        let completed = shared.completed.load(Ordering::Relaxed);
        let remaining = n_items.saturating_sub(completed);
        ticks_seen += 1;
        let rates: Option<Vec<f64>> = match policy {
            _ if ticks_seen <= warmup => None,
            Policy::Static => None,
            Policy::Periodic { .. } => Some(controller.forecast_rates(&speeds)),
            Policy::Reactive { degradation, .. } => {
                let observed = (completed - last_completed) as f64 / interval.as_secs_f64();
                last_completed = completed;
                if observed < degradation * expected_tput {
                    Some(controller.forecast_rates(&speeds))
                } else {
                    None
                }
            }
            Policy::Oracle { .. } => Some(
                shared
                    .vnodes
                    .iter()
                    .map(|v| v.speed * v.load.mean_availability(now, now + interval))
                    .collect(),
            ),
        };

        if let Some(rates) = rates {
            let current = shared.routing.read().clone();
            if let Some(new_mapping) = controller.consider(
                now,
                &profile,
                &topology,
                &rates,
                &current,
                remaining,
                &state_bytes,
            ) {
                expected_tput = evaluate(&profile, &new_mapping, &rates, &topology).throughput;
                let moved = current.diff(&new_mapping);
                *shared.routing.write() = new_mapping.clone();
                // Old hosts must surrender stateful instances (and drop
                // stateless replicas to reclaim memory).
                for &s in &moved {
                    for host in current.placement(s).hosts() {
                        let _ = shared.senders[host.index()].send(Msg::Relinquish { stage: s });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnode::spin_for;
    use adapipe_core::pipeline::PipelineBuilder;
    use adapipe_core::spec::StageSpec;
    use adapipe_gridsim::load::LoadModel;
    use adapipe_gridsim::node::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    /// A stage spinning for `ms` milliseconds per item.
    fn spin_stage(name: &str, ms: u64) -> (StageSpec, impl FnMut(u64) -> u64 + Send + Clone) {
        (
            StageSpec::balanced(name, ms as f64 / 1000.0, 8),
            move |x: u64| {
                spin_for(Duration::from_millis(ms));
                x + 1
            },
        )
    }

    fn free_nodes(k: usize) -> Vec<VNodeSpec> {
        (0..k).map(|i| VNodeSpec::free(format!("v{i}"))).collect()
    }

    /// Wall-clock speedup assertions need real hardware parallelism; on
    /// an undersized host only correctness is asserted.
    fn multicore(k: usize) -> bool {
        std::thread::available_parallelism()
            .map(|p| p.get() >= k)
            .unwrap_or(false)
    }

    #[test]
    fn outputs_are_complete_and_ordered() {
        let (s0, f0) = spin_stage("a", 1);
        let (s1, f1) = spin_stage("b", 1);
        let pipeline = PipelineBuilder::<u64>::new()
            .stage(s0, f0)
            .stage(s1, f1)
            .build();
        let cfg = EngineConfig::new(free_nodes(2));
        let inputs: Vec<u64> = (0..50).collect();
        let outcome = run_pipeline(pipeline, inputs, &cfg);
        assert_eq!(outcome.report.completed, 50);
        assert!(!outcome.report.truncated);
        // Each item passed both stages exactly once: x + 2, in order.
        let expect: Vec<u64> = (0..50).map(|x| x + 2).collect();
        assert_eq!(outcome.outputs, expect);
    }

    #[test]
    fn pipeline_parallelism_beats_sequential_time() {
        // 3 stages × 8 ms on 3 nodes: sequential would be n×24 ms; a
        // pipeline approaches n×8 ms.
        let (s0, f0) = spin_stage("a", 8);
        let (s1, f1) = spin_stage("b", 8);
        let (s2, f2) = spin_stage("c", 8);
        let pipeline = PipelineBuilder::<u64>::new()
            .stage(s0, f0)
            .stage(s1, f1)
            .stage(s2, f2)
            .build();
        let mut cfg = EngineConfig::new(free_nodes(3));
        cfg.initial_mapping = Some(Mapping::from_assignment(&[n(0), n(1), n(2)]));
        let items = 40u64;
        let outcome = run_pipeline(pipeline, (0..items).collect(), &cfg);
        assert_eq!(outcome.report.completed, items);
        if multicore(4) {
            let makespan = outcome.report.makespan.as_secs_f64();
            let sequential = items as f64 * 0.024;
            assert!(
                makespan < sequential * 0.75,
                "makespan {makespan:.3}s should be well under sequential {sequential:.3}s"
            );
        }
    }

    #[test]
    fn slow_vnode_slows_its_stage() {
        let (s0, f0) = spin_stage("a", 5);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        // Same stage on a full-speed vs a quarter-speed node.
        let mut fast_cfg = EngineConfig::new(vec![VNodeSpec::free("fast")]);
        fast_cfg.initial_mapping = Some(Mapping::all_on(n(0), 1));
        let mut slow_cfg = EngineConfig::new(vec![VNodeSpec::with_speed("slow", 0.25)]);
        slow_cfg.initial_mapping = Some(Mapping::all_on(n(0), 1));
        let fast = run_pipeline(
            PipelineBuilder::<u64>::new()
                .stage(spin_stage("a", 5).0, spin_stage("a", 5).1)
                .build(),
            (0..20).collect(),
            &fast_cfg,
        );
        let slow = run_pipeline(pipeline, (0..20).collect(), &slow_cfg);
        let ratio = slow.report.makespan.as_secs_f64() / fast.report.makespan.as_secs_f64();
        assert!(
            ratio > 2.0,
            "quarter-speed node should be ≳4× slower, measured ratio {ratio:.2}"
        );
    }

    #[test]
    fn adaptive_engine_remaps_away_from_loaded_node() {
        // Node 1 collapses to 5 % availability 300 ms into the run; the
        // periodic controller must move its stage elsewhere.
        let (s0, f0) = spin_stage("a", 4);
        let (s1, f1) = spin_stage("b", 4);
        let pipeline = PipelineBuilder::<u64>::new()
            .stage(s0, f0)
            .stage(s1, f1)
            .build();
        let vnodes = vec![
            VNodeSpec::free("v0"),
            VNodeSpec::free("v1").with_load(LoadModel::step(
                1.0,
                0.05,
                SimTime::from_secs_f64(0.3),
            )),
            VNodeSpec::free("v2"),
        ];
        let mut cfg = EngineConfig::new(vnodes);
        cfg.initial_mapping = Some(Mapping::from_assignment(&[n(0), n(1)]));
        cfg.policy = Policy::Periodic {
            interval: SimDuration::from_millis(200),
        };
        let outcome = run_pipeline(pipeline, (0..150).collect(), &cfg);
        assert_eq!(outcome.report.completed, 150);
        assert!(
            outcome.report.adaptation_count() >= 1,
            "controller must re-map at least once"
        );
        // Final mapping avoids the loaded node.
        let final_hosts = outcome.report.final_mapping.nodes_used();
        assert!(
            !final_hosts.contains(&n(1)),
            "stage still on loaded node: {}",
            outcome.report.final_mapping
        );
        // And every item still processed exactly once, in order.
        let expect: Vec<u64> = (0..150).map(|x| x + 2).collect();
        assert_eq!(outcome.outputs, expect);
    }

    #[test]
    fn stateful_stage_migrates_with_state_intact() {
        // A stateful running-sum stage must produce exactly-once,
        // order-insensitive totals even across a migration.
        let sum_spec = StageSpec::balanced("sum", 0.003, 8).with_state(8);
        let pipeline = PipelineBuilder::<u64>::new()
            .stateful_stage(sum_spec, {
                let mut acc = 0u64;
                move |x: u64| {
                    spin_for(Duration::from_millis(3));
                    acc += x;
                    acc
                }
            })
            .build();
        // The host collapses to 5 % almost immediately, so hundreds of
        // items remain when the controller first looks — migration is
        // unambiguously worthwhile.
        let vnodes = vec![
            VNodeSpec::free("v0").with_load(LoadModel::step(
                1.0,
                0.05,
                SimTime::from_secs_f64(0.1),
            )),
            VNodeSpec::free("v1"),
        ];
        let mut cfg = EngineConfig::new(vnodes);
        cfg.initial_mapping = Some(Mapping::all_on(n(0), 1));
        cfg.policy = Policy::Periodic {
            interval: SimDuration::from_millis(150),
        };
        let items: Vec<u64> = (1..=300).collect();
        let outcome = run_pipeline(pipeline, items, &cfg);
        assert_eq!(outcome.report.completed, 300);
        // The final (largest) accumulator value must be the total sum:
        // every item added exactly once.
        let max = outcome.outputs.iter().max().copied().unwrap();
        assert_eq!(max, 45150, "state lost or duplicated across migration");
        assert!(outcome.report.adaptation_count() >= 1);
    }

    #[test]
    fn reactive_policy_recovers_on_engine() {
        // Same scenario as the periodic test, but the reactive policy
        // only plans when observed throughput degrades.
        let (s0, f0) = spin_stage("a", 4);
        let (s1, f1) = spin_stage("b", 4);
        let pipeline = PipelineBuilder::<u64>::new()
            .stage(s0, f0)
            .stage(s1, f1)
            .build();
        let vnodes = vec![
            VNodeSpec::free("v0"),
            VNodeSpec::free("v1").with_load(LoadModel::step(
                1.0,
                0.05,
                SimTime::from_secs_f64(0.3),
            )),
            VNodeSpec::free("v2"),
        ];
        let mut cfg = EngineConfig::new(vnodes);
        cfg.initial_mapping = Some(Mapping::from_assignment(&[n(0), n(1)]));
        cfg.policy = Policy::Reactive {
            interval: SimDuration::from_millis(200),
            degradation: 0.6,
        };
        let outcome = run_pipeline(pipeline, (0..200).collect(), &cfg);
        assert_eq!(outcome.report.completed, 200);
        assert!(
            outcome.report.adaptation_count() >= 1,
            "reactive controller must react to the collapse"
        );
        let expect: Vec<u64> = (0..200).map(|x| x + 2).collect();
        assert_eq!(outcome.outputs, expect);
    }

    #[test]
    fn oracle_policy_runs_on_engine() {
        let (s0, f0) = spin_stage("a", 3);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let vnodes = vec![
            VNodeSpec::free("v0").with_load(LoadModel::step(
                1.0,
                0.05,
                SimTime::from_secs_f64(0.2),
            )),
            VNodeSpec::free("v1"),
        ];
        let mut cfg = EngineConfig::new(vnodes);
        cfg.initial_mapping = Some(Mapping::all_on(n(0), 1));
        cfg.policy = Policy::Oracle {
            interval: SimDuration::from_millis(150),
        };
        let outcome = run_pipeline(pipeline, (0..150).collect(), &cfg);
        assert_eq!(outcome.report.completed, 150);
        assert!(outcome.report.adaptation_count() >= 1);
        assert!(!outcome.report.final_mapping.placement(0).contains(n(0)));
    }

    #[test]
    fn observation_noise_on_engine_is_tolerated() {
        let (s0, f0) = spin_stage("a", 2);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let mut cfg = EngineConfig::new(free_nodes(2));
        cfg.policy = Policy::Periodic {
            interval: SimDuration::from_millis(150),
        };
        cfg.observation_noise = 0.10;
        let outcome = run_pipeline(pipeline, (0..100).collect(), &cfg);
        assert_eq!(outcome.report.completed, 100);
        let expect: Vec<u64> = (0..100).map(|x| x + 1).collect();
        assert_eq!(outcome.outputs, expect);
    }

    #[test]
    fn planning_cycles_are_reported() {
        let (s0, f0) = spin_stage("a", 2);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let mut cfg = EngineConfig::new(free_nodes(2));
        cfg.policy = Policy::Periodic {
            interval: SimDuration::from_millis(100),
        };
        // Pace the input so the run outlives the 2-tick warm-up by a
        // comfortable margin.
        cfg.pacing_rate = Some(200.0); // 150 items → ≥ 750 ms
        let outcome = run_pipeline(pipeline, (0..150).collect(), &cfg);
        assert!(outcome.report.planning_cycles >= 1);
    }

    #[test]
    fn link_emulation_slows_cross_node_boundaries() {
        let mk_pipeline = || {
            let (s0, f0) = spin_stage("a", 1);
            let (s1, f1) = spin_stage("b", 1);
            let mut p = PipelineBuilder::<u64>::new().stage(s0, f0).stage(s1, f1);
            p = p.input_bytes(0);
            p.build()
        };
        let slow_link = Topology::uniform(2, LinkSpec::new(SimDuration::from_millis(10), 1e9));
        let mk_cfg = |emulate: bool| {
            let mut cfg = EngineConfig::new(free_nodes(2));
            cfg.initial_mapping = Some(Mapping::from_assignment(&[n(0), n(1)]));
            cfg.topology = Some(slow_link.clone());
            cfg.emulate_links = emulate;
            cfg
        };
        let items = 30u64;
        let without = run_pipeline(mk_pipeline(), (0..items).collect(), &mk_cfg(false));
        let with = run_pipeline(mk_pipeline(), (0..items).collect(), &mk_cfg(true));
        assert_eq!(with.report.completed, items);
        // Each boundary crossing pays ≥ 10 ms of sender serialisation:
        // the emulated run must be visibly slower.
        assert!(
            with.report.makespan.as_secs_f64() > without.report.makespan.as_secs_f64() + 0.1,
            "emulated {} vs plain {}",
            with.report.makespan,
            without.report.makespan
        );
        let expect: Vec<u64> = (0..items).map(|x| x + 2).collect();
        assert_eq!(with.outputs, expect);
    }

    #[test]
    fn empty_input_returns_immediately() {
        let (s0, f0) = spin_stage("a", 1);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let cfg = EngineConfig::new(free_nodes(1));
        let outcome = run_pipeline(pipeline, vec![], &cfg);
        assert_eq!(outcome.report.completed, 0);
        assert!(outcome.outputs.is_empty());
    }

    #[test]
    fn pacing_limits_throughput() {
        let (s0, f0) = spin_stage("a", 1);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let mut cfg = EngineConfig::new(free_nodes(1));
        cfg.pacing_rate = Some(100.0); // 10 ms between items
        let outcome = run_pipeline(pipeline, (0..30).collect(), &cfg);
        // 30 items at 100/s ≥ 0.29 s regardless of stage speed.
        assert!(outcome.report.makespan.as_secs_f64() > 0.25);
        assert_eq!(outcome.report.completed, 30);
    }

    #[test]
    fn replicated_hot_stage_uses_multiple_nodes() {
        // One 10 ms stage, 3 nodes: the planner should replicate it, and
        // the engine must produce exactly-once outputs anyway.
        let (s0, f0) = spin_stage("hot", 10);
        let pipeline = PipelineBuilder::<u64>::new().stage(s0, f0).build();
        let cfg = EngineConfig::new(free_nodes(3));
        let outcome = run_pipeline(pipeline, (0..60).collect(), &cfg);
        assert_eq!(outcome.report.completed, 60);
        let expect: Vec<u64> = (0..60).map(|x| x + 1).collect();
        assert_eq!(outcome.outputs, expect);
        // With ≥2 replicas the makespan beats the single-node 600 ms —
        // only observable with real hardware parallelism.
        if multicore(4) && outcome.report.final_mapping.placement(0).width() > 1 {
            assert!(outcome.report.makespan.as_secs_f64() < 0.55);
        }
    }
}
