//! The adaptation controller: monitor → plan → decide.
//!
//! Both execution engines (simulated and threaded) delegate the same
//! three-step cycle to [`Controller`]:
//!
//! 1. **Monitor** — per-node availability observations feed an NWS-style
//!    forecaster bank;
//! 2. **Plan** — the mapper searches for the best mapping under the
//!    forecast effective rates;
//! 3. **Decide** — hysteresis and cost/benefit rules accept or reject the
//!    candidate, pricing migration as state transfer plus a fixed drain
//!    overhead.

use crate::report::AdaptationEvent;
use adapipe_gridsim::net::Topology;
use adapipe_gridsim::time::{SimDuration, SimTime};
use adapipe_mapper::decide::{should_remap, Decision, DecisionConfig};
use adapipe_mapper::mapping::Mapping;
use adapipe_mapper::model::{evaluate, PipelineProfile, Prediction};
use adapipe_mapper::search::{plan, PlannerConfig};
use adapipe_monitor::periodicity::PeriodicityDetector;
use adapipe_monitor::sensor::{ForecasterKind, MetricBank};

/// Controller tunables.
#[derive(Clone, Debug)]
pub struct ControllerConfig {
    /// Mapping search configuration.
    pub planner: PlannerConfig,
    /// Re-mapping hysteresis configuration.
    pub decision: DecisionConfig,
    /// Observations retained per node forecaster.
    pub monitor_window: usize,
    /// Which predictor family the availability bank uses (ablation knob;
    /// the default NWS ensemble is what the pattern prescribes).
    pub forecaster: ForecasterKind,
    /// Fixed cost charged per re-mapping on top of state transfer
    /// (pipeline drain, coordination).
    pub remap_overhead: SimDuration,
    /// Monitoring ticks to observe before the first re-mapping decision.
    /// A cold forecaster extrapolates wildly from one aliased sample; in
    /// deployment the grid information service supplies history, and a
    /// fresh run must accumulate a minimum of its own.
    pub warmup_ticks: u32,
    /// Availability observations per adaptation interval (the monitor
    /// samples faster than the planner acts, as NWS sensors do). Faster
    /// sensing shortens the staleness of the data behind each decision,
    /// which is what makes tracking oscillating load profitable at all.
    pub samples_per_interval: u32,
    /// Consecutive ticks the "re-map" verdict must repeat before the
    /// controller acts (decision debouncing). A dead current mapping
    /// (zero predicted throughput) bypasses confirmation: crash recovery
    /// cannot wait.
    ///
    /// Default **1** (act on the first verdict): measured across
    /// square-wave load periods (see ablation A2 and the
    /// `adaptation_stability` suite), the verdict-lag a confirmation adds
    /// turns profitable load-chasing into anti-phase churn, losing more
    /// than the flapping it prevents — the regret guard plus hysteresis
    /// bound the flapping damage at far lower cost. Raise this only when
    /// migrations are so expensive that any churn is intolerable.
    pub confirm_ticks: u32,
    /// Regret guard: when a re-mapping's *realized* throughput stays
    /// below `guard_tolerance ×` its predicted throughput for
    /// `guard_bad_ticks` consecutive ticks, the engine reverts to the
    /// previous mapping and suppresses planning for `guard_hold_ticks`.
    /// Forecast-driven decisions can be fooled by loads the predictor
    /// family cannot represent (e.g. oscillation phase-locked to the
    /// control period); measured throughput cannot.
    pub guard_tolerance: f64,
    /// Consecutive under-performing ticks before the guard reverts
    /// (0 disables the guard).
    pub guard_bad_ticks: u32,
    /// Planning hold-down after a guard revert, in ticks.
    pub guard_hold_ticks: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            planner: PlannerConfig::default(),
            decision: DecisionConfig::default(),
            monitor_window: 16,
            forecaster: ForecasterKind::default(),
            remap_overhead: SimDuration::from_millis(100),
            warmup_ticks: 2,
            samples_per_interval: 4,
            confirm_ticks: 1,
            guard_tolerance: 0.6,
            guard_bad_ticks: 2,
            guard_hold_ticks: 8,
        }
    }
}

/// The adaptation brain shared by all engines.
pub struct Controller {
    cfg: ControllerConfig,
    /// One availability forecaster per node.
    bank: MetricBank,
    /// One oscillation detector per node (diagnostic; see
    /// [`Controller::oscillating_nodes`]).
    periodicity: Vec<PeriodicityDetector>,
    events: Vec<AdaptationEvent>,
    plans_evaluated: u64,
    /// Consecutive ticks whose verdict was "re-map".
    remap_votes: u32,
}

impl Controller {
    /// Creates a controller monitoring `np` nodes.
    pub fn new(np: usize, cfg: ControllerConfig) -> Self {
        let bank = MetricBank::with_kind(np, cfg.monitor_window, cfg.forecaster);
        let periodicity = (0..np)
            .map(|_| PeriodicityDetector::new(64.max(cfg.monitor_window * 4), 0.5))
            .collect();
        Controller {
            cfg,
            bank,
            periodicity,
            events: Vec::new(),
            plans_evaluated: 0,
            remap_votes: 0,
        }
    }

    /// Feeds one availability observation for node `node_idx` at time
    /// `t` (seconds).
    pub fn observe_availability(&mut self, node_idx: usize, t: f64, availability: f64) {
        let v = availability.clamp(0.0, 1.0);
        self.bank.observe(node_idx, t, v);
        self.periodicity[node_idx].observe(v);
    }

    /// Nodes whose availability currently looks *periodic*, with the
    /// detected period in observation-sample units. Periodic load near
    /// the control period is the adversarial regime for forecast-driven
    /// adaptation (ablation A2); deployments can use this diagnostic to
    /// lengthen the adaptation interval or raise `confirm_ticks`.
    pub fn oscillating_nodes(&self) -> Vec<(usize, usize)> {
        self.periodicity
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.period().map(|p| (i, p)))
            .collect()
    }

    /// Forecast effective rates: nominal speed × predicted availability
    /// (1.0 for never-observed nodes — optimistic, matching a fresh grid
    /// information service).
    pub fn forecast_rates(&self, speeds: &[f64]) -> Vec<f64> {
        speeds
            .iter()
            .enumerate()
            .map(|(i, &s)| s * self.bank.predict_or(i, 1.0).clamp(0.0, 1.0))
            .collect()
    }

    /// Model prediction for `mapping` under `rates`.
    pub fn predict(
        &self,
        profile: &PipelineProfile,
        mapping: &Mapping,
        rates: &[f64],
        topology: &Topology,
    ) -> Prediction {
        evaluate(profile, mapping, rates, topology)
    }

    /// Estimated migration cost from `from` to `to`: per moved stage,
    /// state transfer between the old and new primary hosts, plus one
    /// fixed drain overhead if anything moves at all.
    pub fn migration_cost(
        &self,
        from: &Mapping,
        to: &Mapping,
        state_bytes: &[u64],
        topology: &Topology,
    ) -> SimDuration {
        let moved = from.diff(to);
        if moved.is_empty() {
            return SimDuration::ZERO;
        }
        let mut cost = self.cfg.remap_overhead;
        for &s in &moved {
            let bytes = state_bytes[s];
            if bytes > 0 {
                let src = from.placement(s).primary();
                let dst = to.placement(s).primary();
                if src != dst {
                    cost = cost.saturating_add(topology.transfer_time(src, dst, bytes));
                }
            }
        }
        cost
    }

    /// One full adaptation cycle. Returns the accepted new mapping and
    /// the recorded [`AdaptationEvent`], or `None` to keep the current
    /// mapping.
    #[allow(clippy::too_many_arguments)]
    pub fn consider(
        &mut self,
        now: SimTime,
        profile: &PipelineProfile,
        topology: &Topology,
        rates: &[f64],
        current: &Mapping,
        remaining_items: u64,
        state_bytes: &[u64],
    ) -> Option<Mapping> {
        self.plans_evaluated += 1;
        let candidate = plan(profile, rates, topology, &self.cfg.planner);
        if candidate.mapping == *current {
            // "Current is best" is a keep verdict: clear any pending
            // re-map votes so flapping forecasts never accumulate one.
            self.remap_votes = 0;
            return None;
        }
        let current_pred = evaluate(profile, current, rates, topology);
        let migration = self.migration_cost(current, &candidate.mapping, state_bytes, topology);
        let decision = should_remap(
            &current_pred,
            &candidate.prediction,
            remaining_items,
            migration.as_secs_f64(),
            &self.cfg.decision,
        );
        match decision {
            Decision::Keep { .. } => {
                self.remap_votes = 0;
                None
            }
            Decision::Remap { speedup, .. } => {
                self.remap_votes += 1;
                // Debounce: act only on a confirmed verdict, unless the
                // current mapping is dead (crash recovery is immediate).
                let dead_current = current_pred.throughput <= 0.0;
                if !dead_current && self.remap_votes < self.cfg.confirm_ticks {
                    return None;
                }
                self.remap_votes = 0;
                let event = AdaptationEvent {
                    at: now,
                    from: current.clone(),
                    to: candidate.mapping.clone(),
                    migrated_stages: current.diff(&candidate.mapping),
                    predicted_speedup: speedup,
                    migration_cost: migration,
                };
                self.events.push(event);
                Some(candidate.mapping)
            }
        }
    }

    /// All re-mappings accepted so far.
    pub fn events(&self) -> &[AdaptationEvent] {
        &self.events
    }

    /// Consumes the controller, returning its event log.
    pub fn into_events(self) -> Vec<AdaptationEvent> {
        self.events
    }

    /// How many planning cycles ran (accepted or not) — adaptation
    /// overhead accounting for table T3.
    pub fn plans_evaluated(&self) -> u64 {
        self.plans_evaluated
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Direct access to the forecaster bank (diagnostics).
    pub fn bank(&self) -> &MetricBank {
        &self.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_gridsim::net::LinkSpec;
    use adapipe_gridsim::node::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    fn topo(np: usize) -> Topology {
        Topology::uniform(np, LinkSpec::lan())
    }

    fn profile3() -> PipelineProfile {
        PipelineProfile::uniform(vec![1.0, 1.0, 1.0], 1000)
    }

    #[test]
    fn forecast_defaults_to_full_availability() {
        let c = Controller::new(2, ControllerConfig::default());
        assert_eq!(c.forecast_rates(&[2.0, 3.0]), vec![2.0, 3.0]);
    }

    #[test]
    fn forecast_tracks_observations() {
        let mut c = Controller::new(2, ControllerConfig::default());
        for i in 0..20 {
            c.observe_availability(1, i as f64, 0.25);
        }
        let rates = c.forecast_rates(&[2.0, 2.0]);
        assert_eq!(rates[0], 2.0);
        assert!((rates[1] - 0.5).abs() < 0.05, "rates[1]={}", rates[1]);
    }

    #[test]
    fn consider_moves_off_degraded_node_after_confirmation() {
        let cfg = ControllerConfig {
            confirm_ticks: 2,
            ..ControllerConfig::default()
        };
        let mut c = Controller::new(3, cfg);
        // Node 0 collapses to 5 % availability.
        for i in 0..20 {
            c.observe_availability(0, i as f64, 0.05);
        }
        let profile = profile3();
        let current = Mapping::from_assignment(&[n(0), n(1), n(2)]);
        let rates = c.forecast_rates(&[1.0, 1.0, 1.0]);
        let state = [0u64, 0, 0];
        let consider = |c: &mut Controller, t: f64| {
            c.consider(
                SimTime::from_secs_f64(t),
                &profile,
                &topo(3),
                &rates,
                &current,
                10_000,
                &state,
            )
        };
        // First verdict is only a vote (confirm_ticks = 2 by default).
        assert!(consider(&mut c, 20.0).is_none(), "first vote must not act");
        let new = consider(&mut c, 25.0).expect("second consecutive vote acts");
        assert!(
            !new.placements()
                .iter()
                .any(|p| p.contains(n(0)) && p.is_single()),
            "stage still pinned to degraded node: {new}"
        );
        assert_eq!(c.events().len(), 1);
        assert!(c.events()[0].predicted_speedup > 1.1);
    }

    #[test]
    fn oscillation_diagnostic_flags_wavy_nodes() {
        let mut c = Controller::new(2, ControllerConfig::default());
        // Node 0: square wave with period 8 samples; node 1: constant.
        for i in 0..128 {
            let wave = if (i / 4) % 2 == 0 { 1.0 } else { 0.1 };
            c.observe_availability(0, i as f64, wave);
            c.observe_availability(1, i as f64, 0.8);
        }
        let flagged = c.oscillating_nodes();
        assert_eq!(flagged.len(), 1, "only the wavy node flags: {flagged:?}");
        assert_eq!(flagged[0].0, 0);
        assert_eq!(flagged[0].1, 8, "period in sample units");
    }

    #[test]
    fn dead_mapping_bypasses_confirmation() {
        let mut c = Controller::new(2, ControllerConfig::default());
        let profile = PipelineProfile::uniform(vec![1.0], 0);
        let current = Mapping::from_assignment(&[n(0)]);
        // Node 0 is fully dead: the current mapping predicts zero
        // throughput, so the very first verdict must act.
        let rates = [0.0, 1.0];
        let new = c.consider(
            SimTime::ZERO,
            &profile,
            &topo(2),
            &rates,
            &current,
            100,
            &[0],
        );
        assert!(
            new.is_some(),
            "crash recovery must not wait for confirmation"
        );
    }

    #[test]
    fn alternating_verdicts_never_confirm() {
        let cfg = ControllerConfig {
            confirm_ticks: 2,
            ..ControllerConfig::default()
        };
        let mut c = Controller::new(3, cfg);
        let profile = profile3();
        let current = Mapping::from_assignment(&[n(0), n(1), n(2)]);
        let state = [0u64, 0, 0];
        // Alternate between "node 0 degraded" and "all fine" forecasts:
        // the remap vote resets every other tick and never confirms.
        for k in 0..10 {
            let rates = if k % 2 == 0 {
                [0.05, 1.0, 1.0]
            } else {
                [1.0, 1.0, 1.0]
            };
            let out = c.consider(
                SimTime::from_secs_f64(k as f64 * 5.0),
                &profile,
                &topo(3),
                &rates,
                &current,
                10_000,
                &state,
            );
            assert!(
                out.is_none(),
                "flapping forecast must never trigger a re-map"
            );
        }
        assert!(c.events().is_empty());
    }

    #[test]
    fn consider_keeps_good_mapping() {
        let mut c = Controller::new(3, ControllerConfig::default());
        let profile = profile3();
        let current = Mapping::from_assignment(&[n(0), n(1), n(2)]);
        let rates = [1.0, 1.0, 1.0];
        let out = c.consider(
            SimTime::ZERO,
            &profile,
            &topo(3),
            &rates,
            &current,
            10_000,
            &[0, 0, 0],
        );
        assert!(out.is_none(), "balanced mapping must be kept");
        assert!(c.events().is_empty());
        assert_eq!(c.plans_evaluated(), 1);
    }

    #[test]
    fn migration_cost_counts_state_transfer() {
        let c = Controller::new(2, ControllerConfig::default());
        let from = Mapping::from_assignment(&[n(0), n(0)]);
        let to = Mapping::from_assignment(&[n(0), n(1)]);
        // Stage 1 moves with 1 MB of state over a LAN link.
        let cost = c.migration_cost(&from, &to, &[0, 1 << 20], &topo(2));
        let floor = c.config().remap_overhead;
        assert!(cost > floor, "cost {cost} should exceed the fixed overhead");
        // No move → no cost at all.
        assert_eq!(
            c.migration_cost(&from, &from, &[0, 0], &topo(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn stateless_migration_costs_only_overhead() {
        let c = Controller::new(2, ControllerConfig::default());
        let from = Mapping::from_assignment(&[n(0)]);
        let to = Mapping::from_assignment(&[n(1)]);
        let cost = c.migration_cost(&from, &to, &[0], &topo(2));
        assert_eq!(cost, c.config().remap_overhead);
    }

    #[test]
    fn exhausted_stream_never_remaps() {
        let mut c = Controller::new(2, ControllerConfig::default());
        for i in 0..20 {
            c.observe_availability(0, i as f64, 0.01);
        }
        let profile = PipelineProfile::uniform(vec![1.0], 0);
        let current = Mapping::from_assignment(&[n(0)]);
        let rates = c.forecast_rates(&[1.0, 1.0]);
        let out = c.consider(SimTime::ZERO, &profile, &topo(2), &rates, &current, 0, &[0]);
        assert!(out.is_none());
    }
}
