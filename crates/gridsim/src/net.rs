//! The interconnection network: heterogeneous point-to-point links.
//!
//! The adaptive pipeline pattern needs only the *cost* of moving an item
//! between the processors hosting adjacent stages, so the network is
//! modelled as a full matrix of [`LinkSpec`]s (latency + bandwidth) rather
//! than a routed topology. Intra-node "links" have near-zero cost.

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// Point-to-point link characteristics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// One-way latency added to every transfer.
    pub latency: SimDuration,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl LinkSpec {
    /// Builds a link from latency and bandwidth.
    ///
    /// # Panics
    /// Panics if bandwidth is not strictly positive.
    pub fn new(latency: SimDuration, bandwidth: f64) -> Self {
        assert!(
            bandwidth > 0.0 && bandwidth.is_finite(),
            "bandwidth must be positive"
        );
        LinkSpec { latency, bandwidth }
    }

    /// An effectively free link used for transfers within one node:
    /// 1 µs latency, 100 GB/s.
    pub fn local() -> Self {
        LinkSpec::new(SimDuration::from_micros(1), 100e9)
    }

    /// A LAN-class link: 0.1 ms latency, 1 Gbit/s.
    pub fn lan() -> Self {
        LinkSpec::new(SimDuration::from_micros(100), 125e6)
    }

    /// A WAN-class link: 20 ms latency, 100 Mbit/s.
    pub fn wan() -> Self {
        LinkSpec::new(SimDuration::from_millis(20), 12.5e6)
    }

    /// A congested WAN link: 100 ms latency, 10 Mbit/s.
    pub fn slow_wan() -> Self {
        LinkSpec::new(SimDuration::from_millis(100), 1.25e6)
    }

    /// Time to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

/// Full link matrix between `n` nodes.
///
/// The matrix need not be symmetric (e.g. asymmetric DSL-like links), but
/// all builders here produce symmetric topologies.
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    links: Vec<LinkSpec>,
}

impl Topology {
    /// A topology where every distinct pair uses `inter` and every node
    /// reaches itself via [`LinkSpec::local`].
    pub fn uniform(n: usize, inter: LinkSpec) -> Self {
        assert!(n > 0, "topology needs at least one node");
        let mut links = vec![inter; n * n];
        for i in 0..n {
            links[i * n + i] = LinkSpec::local();
        }
        Topology { n, links }
    }

    /// A cluster-of-clusters topology: nodes are grouped into equal-size
    /// clusters; intra-cluster pairs use `intra`, inter-cluster pairs use
    /// `inter`.
    pub fn clustered(n: usize, cluster_size: usize, intra: LinkSpec, inter: LinkSpec) -> Self {
        assert!(n > 0 && cluster_size > 0);
        let mut topo = Topology::uniform(n, inter);
        for i in 0..n {
            for j in 0..n {
                if i != j && i / cluster_size == j / cluster_size {
                    topo.set(NodeId(i), NodeId(j), intra);
                }
            }
        }
        topo
    }

    /// Number of nodes this topology connects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the topology is empty (never constructible via builders).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The link from `src` to `dst`.
    pub fn link(&self, src: NodeId, dst: NodeId) -> LinkSpec {
        assert!(src.0 < self.n && dst.0 < self.n, "node out of range");
        self.links[src.0 * self.n + dst.0]
    }

    /// Overrides the link from `src` to `dst` (one direction only).
    pub fn set(&mut self, src: NodeId, dst: NodeId, link: LinkSpec) {
        assert!(src.0 < self.n && dst.0 < self.n, "node out of range");
        self.links[src.0 * self.n + dst.0] = link;
    }

    /// Overrides the links in both directions between `a` and `b`.
    pub fn set_symmetric(&mut self, a: NodeId, b: NodeId, link: LinkSpec) {
        self.set(a, b, link);
        self.set(b, a, link);
    }

    /// Transfer time for `bytes` from `src` to `dst`.
    pub fn transfer_time(&self, src: NodeId, dst: NodeId, bytes: u64) -> SimDuration {
        self.link(src, dst).transfer_time(bytes)
    }
}

/// Serialisation state of a contended link: at most one transfer in
/// flight per direction; later transfers queue behind earlier ones.
///
/// This is optional machinery — the analytic model ignores contention, and
/// experiment T2 quantifies the resulting model error.
#[derive(Clone, Debug, Default)]
pub struct LinkQueue {
    busy_until: SimTime,
}

impl LinkQueue {
    /// Creates an idle link queue.
    pub fn new() -> Self {
        LinkQueue {
            busy_until: SimTime::ZERO,
        }
    }

    /// Schedules a transfer requested at `now` taking `duration`;
    /// returns its completion time, accounting for queueing behind any
    /// transfer still in flight.
    pub fn schedule(&mut self, now: SimTime, duration: SimDuration) -> SimTime {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        self.busy_until = start + duration;
        self.busy_until
    }

    /// The time at which the link becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_combines_latency_and_bandwidth() {
        let l = LinkSpec::new(SimDuration::from_millis(10), 1000.0);
        let t = l.transfer_time(500);
        assert!((t.as_secs_f64() - 0.51).abs() < 1e-9, "t={t}");
    }

    #[test]
    fn uniform_topology_has_local_self_links() {
        let topo = Topology::uniform(3, LinkSpec::lan());
        assert_eq!(topo.link(NodeId(0), NodeId(0)), LinkSpec::local());
        assert_eq!(topo.link(NodeId(0), NodeId(2)), LinkSpec::lan());
        assert_eq!(topo.len(), 3);
    }

    #[test]
    fn clustered_topology_distinguishes_intra_and_inter() {
        let topo = Topology::clustered(4, 2, LinkSpec::lan(), LinkSpec::wan());
        assert_eq!(topo.link(NodeId(0), NodeId(1)), LinkSpec::lan());
        assert_eq!(topo.link(NodeId(0), NodeId(2)), LinkSpec::wan());
        assert_eq!(topo.link(NodeId(2), NodeId(3)), LinkSpec::lan());
        assert_eq!(topo.link(NodeId(1), NodeId(1)), LinkSpec::local());
    }

    #[test]
    fn set_symmetric_updates_both_directions() {
        let mut topo = Topology::uniform(2, LinkSpec::lan());
        topo.set_symmetric(NodeId(0), NodeId(1), LinkSpec::slow_wan());
        assert_eq!(topo.link(NodeId(0), NodeId(1)), LinkSpec::slow_wan());
        assert_eq!(topo.link(NodeId(1), NodeId(0)), LinkSpec::slow_wan());
    }

    #[test]
    fn link_queue_serialises_overlapping_transfers() {
        let mut q = LinkQueue::new();
        let d = SimDuration::from_secs(2);
        let first = q.schedule(SimTime::from_secs_f64(0.0), d);
        assert_eq!(first, SimTime::from_secs_f64(2.0));
        // Requested at t=1 but the link is busy until t=2.
        let second = q.schedule(SimTime::from_secs_f64(1.0), d);
        assert_eq!(second, SimTime::from_secs_f64(4.0));
        // Requested after the link went idle: starts immediately.
        let third = q.schedule(SimTime::from_secs_f64(10.0), d);
        assert_eq!(third, SimTime::from_secs_f64(12.0));
    }

    #[test]
    fn local_link_is_cheap() {
        let t = LinkSpec::local().transfer_time(1 << 20);
        assert!(t.as_secs_f64() < 1e-3, "t={t}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_link_panics() {
        let topo = Topology::uniform(2, LinkSpec::lan());
        let _ = topo.link(NodeId(0), NodeId(5));
    }
}
