//! The declared state-access pattern of a pipeline stage.

/// How a stage's mutable state may be accessed — declared at build time,
/// consumed by the planner (replica caps), the router (shard maps), and
/// the execution backends (migration mechanics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StateAccess {
    /// No mutable state at all: replicate and steal freely.
    #[default]
    Stateless,
    /// State partitions by a key hash into `shards` independent slices.
    /// Items carrying the same key always meet the same slice, so the
    /// stage replicates up to `shards` ways — each replica owns the
    /// shard set `{ s : owner_of(s, width) == replica }` — and a shard
    /// migrates whole when its owner changes.
    Keyed {
        /// Number of independent state slices (fixed for the run).
        shards: usize,
    },
    /// One logical value with a commutative merge: every replica keeps a
    /// partial, and a replica leaving a node snapshots its partial for
    /// any survivor to absorb (`Welford::merge` is the in-repo model).
    Accumulator,
    /// Serializable but indivisible: exactly one live instance, which
    /// can nevertheless quiesce, snapshot, and resume elsewhere.
    Exclusive,
    /// Undeclared closure state (the legacy `stateful_stage` path): the
    /// runtime can neither copy nor serialize it. Pins to one node;
    /// permanent node loss is a typed abort.
    Opaque,
}

impl StateAccess {
    /// True for stages with no mutable state.
    pub fn is_stateless(self) -> bool {
        matches!(self, StateAccess::Stateless)
    }

    /// Can the planner run more than one live instance? Keyed stages
    /// split by shard, accumulators keep mergeable partials; exclusive
    /// and opaque state is single-instance by definition.
    pub fn replicable(self) -> bool {
        matches!(
            self,
            StateAccess::Stateless | StateAccess::Keyed { .. } | StateAccess::Accumulator
        )
    }

    /// Can the state leave a dying node? Everything declared can; only
    /// opaque closure state is unrecoverable.
    pub fn migratable(self) -> bool {
        !matches!(self, StateAccess::Opaque)
    }

    /// Shard count: the keyed slice count, `0` for every other pattern.
    pub fn shards(self) -> usize {
        match self {
            StateAccess::Keyed { shards } => shards,
            _ => 0,
        }
    }

    /// The replica bound this pattern supports, folded into the stage's
    /// own `max_replicas` preference. A keyed stage cannot usefully run
    /// wider than its shard count; single-instance patterns clamp to 1.
    pub fn effective_cap(self, max_replicas: usize) -> usize {
        match self {
            StateAccess::Stateless | StateAccess::Accumulator => max_replicas.max(1),
            StateAccess::Keyed { shards } => max_replicas.max(1).min(shards.max(1)),
            StateAccess::Exclusive | StateAccess::Opaque => 1,
        }
    }

    /// Short label for reports and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            StateAccess::Stateless => "stateless",
            StateAccess::Keyed { .. } => "keyed",
            StateAccess::Accumulator => "accumulator",
            StateAccess::Exclusive => "exclusive",
            StateAccess::Opaque => "opaque",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicability_follows_the_taxonomy() {
        assert!(StateAccess::Stateless.replicable());
        assert!(StateAccess::Keyed { shards: 4 }.replicable());
        assert!(StateAccess::Accumulator.replicable());
        assert!(!StateAccess::Exclusive.replicable());
        assert!(!StateAccess::Opaque.replicable());
    }

    #[test]
    fn only_opaque_state_is_unmigratable() {
        assert!(StateAccess::Stateless.migratable());
        assert!(StateAccess::Keyed { shards: 2 }.migratable());
        assert!(StateAccess::Accumulator.migratable());
        assert!(StateAccess::Exclusive.migratable());
        assert!(!StateAccess::Opaque.migratable());
    }

    #[test]
    fn effective_cap_clamps_by_pattern() {
        assert_eq!(StateAccess::Stateless.effective_cap(usize::MAX), usize::MAX);
        assert_eq!(
            StateAccess::Keyed { shards: 4 }.effective_cap(usize::MAX),
            4
        );
        assert_eq!(StateAccess::Keyed { shards: 8 }.effective_cap(3), 3);
        assert_eq!(StateAccess::Accumulator.effective_cap(6), 6);
        assert_eq!(StateAccess::Exclusive.effective_cap(usize::MAX), 1);
        assert_eq!(StateAccess::Opaque.effective_cap(5), 1);
    }

    #[test]
    fn shard_count_is_zero_unless_keyed() {
        assert_eq!(StateAccess::Keyed { shards: 7 }.shards(), 7);
        assert_eq!(StateAccess::Accumulator.shards(), 0);
        assert_eq!(StateAccess::Stateless.shards(), 0);
    }
}
