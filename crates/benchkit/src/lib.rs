//! # adapipe-benchkit
//!
//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, so the workspace's benches compile and run in an offline
//! build environment. The bench crate aliases this as `criterion`
//! (`criterion = { package = "adapipe-benchkit", ... }`), so bench
//! sources keep the upstream API surface they actually use:
//! `Criterion::benchmark_group`, `sample_size`, `measurement_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark, one warm-up iteration, then up to
//! `sample_size` timed iterations bounded by `measurement_time`. Each
//! result prints as a human line and, when `ADAPIPE_BENCH_JSON` names a
//! file, appends one JSON object per line (JSONL) with the group, name,
//! mean/min seconds per iteration and iteration count — the hook the
//! repo's `BENCH_baseline.json` is generated through.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write;
use std::time::{Duration, Instant};

/// Re-exported so bench code can `black_box` values the optimiser must
/// not fold away.
pub use std::hint::black_box;

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Bounds the wall time spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        self.criterion
            .report(&self.name, &name.to_string(), &samples);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id.id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; reporting is per-bench).
    pub fn finish(&mut self) {}
}

/// The harness entry point benches receive as `&mut Criterion`.
#[derive(Default)]
pub struct Criterion {
    json_path: Option<String>,
}

impl Criterion {
    /// Reads harness configuration from the environment
    /// (`ADAPIPE_BENCH_JSON` = write this run's JSONL results to this
    /// file). The file is truncated here, once per run, so regenerating
    /// a committed baseline replaces it instead of appending stale
    /// duplicates.
    pub fn configure_from_args(mut self) -> Self {
        self.json_path = std::env::var("ADAPIPE_BENCH_JSON").ok();
        if let Some(path) = &self.json_path {
            if let Err(e) = std::fs::File::create(path) {
                eprintln!("benchkit: cannot create {path}: {e}");
                self.json_path = None;
            }
        }
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark with default settings.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group("default");
        group.bench_function(name.to_string(), f);
        drop(group);
        self
    }

    fn report(&mut self, group: &str, name: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{group}/{name}: no samples collected");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total.as_secs_f64() / samples.len() as f64;
        let min = samples.iter().min().expect("non-empty").as_secs_f64();
        println!(
            "{group}/{name}: mean {} min {} ({} iters)",
            fmt_secs(mean),
            fmt_secs(min),
            samples.len()
        );
        if let Some(path) = &self.json_path {
            let line = format!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"mean_secs\":{:.9},\"min_secs\":{:.9},\"iters\":{}}}\n",
                escape(group),
                escape(name),
                mean,
                min,
                samples.len()
            );
            let written = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            if let Err(e) = written {
                eprintln!("benchkit: cannot append to {path}: {e}");
            }
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.2}us", s * 1e6)
    }
}

/// Declares a group of benchmark functions (API parity with criterion).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_bounded_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .measurement_time(Duration::from_secs(1));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // One warm-up + at most sample_size timed iterations.
        assert!((2..=6).contains(&runs), "runs={runs}");
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("4x4").id, "4x4");
    }

    #[test]
    fn json_lines_escape_quotes() {
        assert_eq!(escape("a\"b"), "a\\\"b");
    }

    #[test]
    fn fmt_secs_picks_units() {
        assert_eq!(fmt_secs(2.0), "2.000s");
        assert_eq!(fmt_secs(0.002), "2.000ms");
        assert_eq!(fmt_secs(0.000002), "2.00us");
    }
}
