//! Property-based tests for the planner's model and optimisers.

use adapipe_gridsim::net::{LinkSpec, Topology};
use adapipe_gridsim::node::NodeId;
use adapipe_gridsim::time::SimDuration;
use adapipe_mapper::prelude::*;
use proptest::prelude::*;

fn fast_net(np: usize) -> Topology {
    Topology::uniform(np, LinkSpec::new(SimDuration::from_nanos(1), 1e12))
}

// `adapipe_mapper::prelude::Strategy` (the planner enum) collides with
// `proptest::strategy::Strategy`; qualify the trait explicitly.
use proptest::strategy::Strategy as _;

fn arb_instance() -> impl proptest::strategy::Strategy<Value = (Vec<f64>, Vec<f64>, Vec<usize>)> {
    // (stage work, node rates, assignment)
    (1usize..6, 1usize..6).prop_flat_map(|(ns, np)| {
        (
            prop::collection::vec(0.1f64..10.0, ns),
            prop::collection::vec(0.1f64..4.0, np),
            prop::collection::vec(0usize..np, ns),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Raising any node's rate never lowers predicted throughput.
    #[test]
    fn model_is_monotone_in_rates(
        (work, mut rates, assignment) in arb_instance(),
        boost_idx_seed in any::<u64>(),
        boost in 1.01f64..4.0,
    ) {
        let profile = PipelineProfile::uniform(work, 0);
        let mapping = Mapping::from_assignment(
            &assignment.iter().map(|&i| NodeId(i)).collect::<Vec<_>>(),
        );
        let topo = fast_net(rates.len());
        let before = evaluate(&profile, &mapping, &rates, &topo);
        let idx = (boost_idx_seed as usize) % rates.len();
        rates[idx] *= boost;
        let after = evaluate(&profile, &mapping, &rates, &topo);
        prop_assert!(
            after.throughput >= before.throughput - 1e-12,
            "boosting a node lowered throughput: {} -> {}",
            before.throughput,
            after.throughput
        );
    }

    /// With free communication and *equal-rate* nodes, replicating a
    /// stage onto an unused node never lowers predicted throughput.
    ///
    /// (The equal-rate restriction is essential: items are dealt
    /// round-robin, so a much slower replica receives an equal share it
    /// cannot sustain and becomes the new bottleneck — a real property
    /// of the pattern that the greedy replication pass must, and does,
    /// account for via the model.)
    #[test]
    fn replication_never_hurts_on_equal_nodes(
        (work, rates, assignment) in arb_instance(),
        stage_seed in any::<u64>(),
        rate in 0.1f64..4.0,
    ) {
        let np = rates.len() + 1; // ensure at least one unused node exists
        let rates = vec![rate; np];
        let profile = PipelineProfile::uniform(work, 0);
        let base = Mapping::from_assignment(
            &assignment.iter().map(|&i| NodeId(i)).collect::<Vec<_>>(),
        );
        let topo = fast_net(np);
        let before = evaluate(&profile, &base, &rates, &topo);
        let stage = (stage_seed as usize) % base.len();
        // A node hosting nothing at all.
        let used = base.nodes_used();
        let candidate = (0..np).map(NodeId).find(|n| !used.contains(n));
        prop_assume!(candidate.is_some());
        let mut widened = base.clone();
        widened.placement_mut(stage).add_host(candidate.unwrap());
        let after = evaluate(&profile, &widened, &rates, &topo);
        prop_assert!(
            after.throughput >= before.throughput - 1e-9,
            "replication hurt: {} -> {} ({base} -> {widened})",
            before.throughput,
            after.throughput
        );
    }

    /// The greedy replication pass itself never returns something worse
    /// than its input, even on wildly heterogeneous nodes.
    #[test]
    fn replication_pass_never_regresses(
        (work, rates, assignment) in arb_instance(),
    ) {
        let profile = PipelineProfile::uniform(work, 1000);
        let base = Mapping::from_assignment(
            &assignment.iter().map(|&i| NodeId(i)).collect::<Vec<_>>(),
        );
        let topo = Topology::uniform(rates.len(), LinkSpec::lan());
        let before = evaluate(&profile, &base, &rates, &topo);
        let (_, after) = improve(&profile, base, &rates, &topo, 4);
        prop_assert!(after.throughput >= before.throughput - 1e-12);
    }

    /// Exhaustive search really is optimal: no random mapping beats it.
    #[test]
    fn exhaustive_dominates_random_mappings(
        (work, rates, assignment) in arb_instance(),
    ) {
        let profile = PipelineProfile::uniform(work, 1000);
        let topo = Topology::uniform(rates.len(), LinkSpec::lan());
        let best = exhaustive_best(&profile, &rates, &topo, 100_000);
        let random = Mapping::from_assignment(
            &assignment.iter().map(|&i| NodeId(i)).collect::<Vec<_>>(),
        );
        let rp = evaluate(&profile, &random, &rates, &topo);
        prop_assert!(
            best.prediction.throughput >= rp.throughput - 1e-12,
            "random {random} beat exhaustive: {} > {}",
            rp.throughput,
            best.prediction.throughput
        );
    }

    /// The contiguous DP dominates random contiguous splits when
    /// communication is free (identical objectives).
    #[test]
    fn dp_dominates_random_contiguous_splits(
        ns in 2usize..8,
        k in 1usize..4,
        work_seed in any::<u64>(),
        split_seed in any::<u64>(),
    ) {
        prop_assume!(k <= ns);
        let work: Vec<f64> = (0..ns)
            .map(|i| 0.5 + ((work_seed.wrapping_mul(i as u64 + 1) % 100) as f64) / 25.0)
            .collect();
        let profile = PipelineProfile::uniform(work, 0);
        let rates: Vec<f64> = (0..k)
            .map(|i| 0.5 + ((split_seed.wrapping_mul(i as u64 + 3) % 50) as f64) / 20.0)
            .collect();
        let hosts: Vec<NodeId> = (0..k).map(NodeId).collect();
        let topo = fast_net(k);
        let dp = contiguous_dp(&profile, &rates, &topo, &hosts).expect("feasible");
        let dp_pred = evaluate(&profile, &dp.to_mapping(), &rates, &topo);

        // Build one random contiguous split with k parts.
        let all = compositions(ns, k);
        let parts = &all[(split_seed as usize) % all.len()];
        let mut ends = Vec::with_capacity(k);
        let mut acc = 0;
        for &p in parts {
            acc += p;
            ends.push(acc);
        }
        let rand_cm = ContiguousMapping::new(ends, hosts.clone());
        let rand_pred = evaluate(&profile, &rand_cm.to_mapping(), &rates, &topo);
        prop_assert!(
            dp_pred.throughput >= rand_pred.throughput - 1e-9,
            "DP lost to a random split: {} < {}",
            dp_pred.throughput,
            rand_pred.throughput
        );
    }

    /// The planner never returns a mapping that uses a dead node when a
    /// live alternative exists.
    #[test]
    fn planner_avoids_dead_nodes(
        ns in 1usize..5,
        dead_seed in any::<u64>(),
    ) {
        let np = 4usize;
        let mut rates = vec![1.0; np];
        let dead = (dead_seed as usize) % np;
        rates[dead] = 0.0;
        let profile = PipelineProfile::uniform(vec![1.0; ns], 1000);
        let topo = Topology::uniform(np, LinkSpec::lan());
        let plan = plan(&profile, &rates, &topo, &PlannerConfig::default());
        prop_assert!(
            !plan.mapping.nodes_used().contains(&NodeId(dead)),
            "planner used dead node {dead}: {}",
            plan.mapping
        );
        prop_assert!(plan.prediction.throughput > 0.0);
    }

    /// Mapping diff is empty iff mappings are equal, and symmetric.
    #[test]
    fn diff_is_consistent(
        (_, _, a) in arb_instance(),
        swap_seed in any::<u64>(),
    ) {
        let np = a.iter().max().unwrap() + 2;
        let ma = Mapping::from_assignment(
            &a.iter().map(|&i| NodeId(i)).collect::<Vec<_>>(),
        );
        let mut b = a.clone();
        let idx = (swap_seed as usize) % b.len();
        b[idx] = (b[idx] + 1) % np;
        let mb = Mapping::from_assignment(
            &b.iter().map(|&i| NodeId(i)).collect::<Vec<_>>(),
        );
        prop_assert!(ma.diff(&ma).is_empty());
        prop_assert_eq!(ma.diff(&mb), mb.diff(&ma));
        prop_assert_eq!(ma.diff(&mb), vec![idx]);
    }

    /// completion_time(n) is monotone in n and ≥ latency.
    #[test]
    fn completion_estimate_is_monotone(
        (work, rates, assignment) in arb_instance(),
        n1 in 1u64..1_000,
        n2 in 1u64..1_000,
    ) {
        let profile = PipelineProfile::uniform(work, 100);
        let mapping = Mapping::from_assignment(
            &assignment.iter().map(|&i| NodeId(i)).collect::<Vec<_>>(),
        );
        let topo = Topology::uniform(rates.len(), LinkSpec::lan());
        let pred = evaluate(&profile, &mapping, &rates, &topo);
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(pred.completion_time(lo) <= pred.completion_time(hi));
        prop_assert!(pred.completion_time(1) >= pred.latency - 1e-12);
    }
}
