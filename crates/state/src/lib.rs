//! State as a plannable, movable resource.
//!
//! The adaptive pipeline pattern treats stage placement as a decision the
//! runtime revisits while the stream runs. That story breaks down the
//! moment a stage closes over mutable state: an undeclared closure is a
//! black box the runtime can neither copy nor move, so the stage pins to
//! one node, cannot replicate, and a permanent node loss is a typed
//! abort. This crate implements the state-access taxonomy of Danelutto
//! and Torquati (*State access patterns in embarrassingly parallel
//! computations*): stages **declare** how their state is accessed, and
//! the declaration is what turns state from an obstacle into a resource
//! the planner can shard, replicate, and migrate.
//!
//! Three declared patterns, one legacy escape hatch:
//!
//! | Pattern | Replicable | Migratable | Mechanism |
//! |---|---|---|---|
//! | [`StateAccess::Keyed`] | yes (≤ shards) | yes | items hash to shards; each replica owns a shard set |
//! | [`StateAccess::Accumulator`] | yes | yes | per-replica partials, merged on hand-off |
//! | [`StateAccess::Exclusive`] | no | yes | one serializable instance, moved whole |
//! | [`StateAccess::Opaque`] | no | no | undeclared closure state (legacy) |
//!
//! Movement is mediated by [`StateSnapshot`] — a versioned byte blob
//! produced by [`StateCodec`]-encodable state — so a stage instance can
//! leave a node: quiesce, snapshot, ship, restore on the new host.
//! Shard arithmetic ([`shard_of`], [`owner_of`]) is deliberately tiny
//! and lives here so the router, the planner, and both execution
//! backends agree on which replica owns which shard by construction.

mod access;
mod codec;
mod shard;
mod snapshot;

pub use access::StateAccess;
pub use codec::StateCodec;
pub use shard::{fnv1a, owner_of, shard_of};
pub use snapshot::StateSnapshot;
