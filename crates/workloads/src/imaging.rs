//! An image-processing pipeline with real computational kernels.
//!
//! The canonical motivating application for pipeline skeletons: a stream
//! of frames passes through *generate → blur → edge-detect → quantise*
//! stages. The kernels are genuine (3×3 convolution, Sobel operator,
//! histogram quantisation over `u8` grids), so the threaded engine runs
//! them as real compute while the simulator plans with their measured
//! cost shape.

use adapipe_core::pipeline::{Pipeline, PipelineBuilder};
use adapipe_core::spec::StageSpec;
use adapipe_gridsim::rng::{mix, unit_f64};

/// A grayscale image in row-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// `width × height` pixel values.
    pub pixels: Vec<u8>,
}

impl Image {
    /// Creates an image filled with zeros.
    pub fn zeros(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        Image {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Deterministic pseudo-random test frame `index`.
    pub fn synthetic(width: usize, height: usize, index: u64) -> Self {
        let mut img = Image::zeros(width, height);
        for (i, px) in img.pixels.iter_mut().enumerate() {
            *px = (mix(index, i as u64) & 0xFF) as u8;
        }
        img
    }

    /// Pixel at `(x, y)` with edge clamping.
    #[inline]
    pub fn at_clamped(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[y * self.width + x]
    }

    /// Bytes occupied by the pixel data.
    pub fn byte_size(&self) -> u64 {
        self.pixels.len() as u64
    }
}

/// 3×3 convolution with the given kernel (divided by `divisor`), edge
/// pixels clamped.
pub fn convolve3x3(src: &Image, kernel: &[[i32; 3]; 3], divisor: i32) -> Image {
    assert!(divisor != 0, "divisor must be non-zero");
    let mut out = Image::zeros(src.width, src.height);
    for y in 0..src.height as isize {
        for x in 0..src.width as isize {
            let mut acc = 0i32;
            for (ky, row) in kernel.iter().enumerate() {
                for (kx, &k) in row.iter().enumerate() {
                    let px = src.at_clamped(x + kx as isize - 1, y + ky as isize - 1);
                    acc += k * px as i32;
                }
            }
            out.pixels[y as usize * src.width + x as usize] = (acc / divisor).clamp(0, 255) as u8;
        }
    }
    out
}

/// Box blur (all-ones kernel).
pub fn blur(src: &Image) -> Image {
    convolve3x3(src, &[[1, 1, 1], [1, 1, 1], [1, 1, 1]], 9)
}

/// Sobel edge magnitude.
pub fn sobel(src: &Image) -> Image {
    let gx_k = [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]];
    let gy_k = [[-1, -2, -1], [0, 0, 0], [1, 2, 1]];
    let mut out = Image::zeros(src.width, src.height);
    for y in 0..src.height as isize {
        for x in 0..src.width as isize {
            let mut gx = 0i32;
            let mut gy = 0i32;
            for ky in 0..3 {
                for kx in 0..3 {
                    let px = src.at_clamped(x + kx as isize - 1, y + ky as isize - 1) as i32;
                    gx += gx_k[ky][kx] * px;
                    gy += gy_k[ky][kx] * px;
                }
            }
            let mag = ((gx * gx + gy * gy) as f64).sqrt().min(255.0) as u8;
            out.pixels[y as usize * src.width + x as usize] = mag;
        }
    }
    out
}

/// Quantises to `levels` grey levels (posterisation).
pub fn quantise(src: &Image, levels: u8) -> Image {
    assert!(levels >= 2, "need at least two levels");
    let step = 256.0 / levels as f64;
    let mut out = src.clone();
    for px in &mut out.pixels {
        let bucket = (*px as f64 / step).floor().min(levels as f64 - 1.0);
        *px = (bucket * step + step / 2.0) as u8;
    }
    out
}

/// Builds the 4-stage imaging pipeline over `side`×`side` frames for the
/// threaded engine: blur → sobel → quantise → checksum.
///
/// Work metadata is expressed in seconds-of-compute per frame on a unit
/// node, estimated from the kernels' arithmetic density (the engine's
/// planner only needs *relative* weights; absolute wall times depend on
/// the host and are measured, not assumed).
pub fn imaging_pipeline(side: usize) -> Pipeline<Image, u64> {
    let frame_bytes = (side * side) as u64;
    // Relative weights: sobel does two convolutions' worth of work.
    let w_blur = 1.0;
    let w_sobel = 2.0;
    let w_quant = 0.25;
    let w_sum = 0.1;
    PipelineBuilder::<Image>::new()
        .input_bytes(frame_bytes)
        .stage(
            StageSpec::balanced("blur", w_blur, frame_bytes),
            |img: Image| blur(&img),
        )
        .stage(
            StageSpec::balanced("sobel", w_sobel, frame_bytes),
            |img: Image| sobel(&img),
        )
        .stage(
            StageSpec::balanced("quantise", w_quant, frame_bytes),
            |img: Image| quantise(&img, 8),
        )
        .stage(StageSpec::balanced("checksum", w_sum, 8), |img: Image| {
            img.pixels.iter().map(|&p| p as u64).sum::<u64>()
        })
        .build()
}

/// Generates `n` synthetic frames.
pub fn frames(side: usize, n: u64) -> Vec<Image> {
    (0..n).map(|i| Image::synthetic(side, side, i)).collect()
}

/// Deterministic jitter in `[lo, hi)` keyed by `(seed, index)` — used by
/// examples to vary frame sizes.
pub fn jitter_in(seed: u64, index: u64, lo: f64, hi: f64) -> f64 {
    assert!(hi > lo);
    lo + (hi - lo) * unit_f64(mix(seed, index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_frames_are_deterministic() {
        let a = Image::synthetic(16, 16, 3);
        let b = Image::synthetic(16, 16, 3);
        let c = Image::synthetic(16, 16, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.byte_size(), 256);
    }

    #[test]
    fn blur_smooths_an_impulse() {
        let mut img = Image::zeros(5, 5);
        img.pixels[2 * 5 + 2] = 255;
        let out = blur(&img);
        // The impulse spreads: centre becomes 255/9 = 28.
        assert_eq!(out.pixels[2 * 5 + 2], 28);
        assert_eq!(out.pixels[5 + 1], 28);
        assert_eq!(out.pixels[0], 0);
    }

    #[test]
    fn blur_preserves_constant_images() {
        let img = Image {
            width: 4,
            height: 4,
            pixels: vec![100; 16],
        };
        assert_eq!(blur(&img).pixels, vec![100; 16]);
    }

    #[test]
    fn sobel_finds_a_vertical_edge() {
        // Left half 0, right half 255 → strong response on the boundary.
        let mut img = Image::zeros(8, 8);
        for y in 0..8 {
            for x in 4..8 {
                img.pixels[y * 8 + x] = 255;
            }
        }
        let out = sobel(&img);
        let edge = out.pixels[3 * 8 + 4];
        let flat = out.pixels[3 * 8 + 1];
        assert!(edge > 200, "edge response {edge}");
        assert_eq!(flat, 0, "flat region must stay dark");
    }

    #[test]
    fn quantise_reduces_distinct_levels() {
        let img = Image::synthetic(32, 32, 7);
        let out = quantise(&img, 4);
        let mut levels: Vec<u8> = out.pixels.clone();
        levels.sort_unstable();
        levels.dedup();
        assert!(levels.len() <= 4, "got {} levels", levels.len());
    }

    #[test]
    fn clamping_handles_borders() {
        let img = Image::synthetic(3, 3, 0);
        assert_eq!(img.at_clamped(-5, -5), img.at_clamped(0, 0));
        assert_eq!(img.at_clamped(10, 10), img.at_clamped(2, 2));
    }

    #[test]
    fn pipeline_spec_shape_matches_stages() {
        let p = imaging_pipeline(64);
        assert_eq!(p.len(), 4);
        let profile = p.spec().profile();
        profile.validate();
        // Sobel is the heavy stage.
        let max = profile.stage_work.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(profile.stage_work[1], max);
    }

    #[test]
    fn pipeline_runs_end_to_end_in_process() {
        let p = imaging_pipeline(16);
        let (_, mut stages) = p.into_parts();
        let mut item: adapipe_core::stage::BoxedItem =
            adapipe_core::payload::Payload::new(Image::synthetic(16, 16, 0));
        for s in &mut stages {
            item = s.process(item).expect("stages are type-aligned");
        }
        let checksum = item.downcast::<u64>().unwrap();
        assert!(checksum > 0);
    }

    #[test]
    fn jitter_stays_in_range() {
        for i in 0..1000 {
            let v = jitter_in(5, i, 2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }
}
