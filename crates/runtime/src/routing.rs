//! Live stage→replica routing.
//!
//! A [`RoutingTable`] wraps the current [`Mapping`] with per-stage
//! replica-selection state. Both execution backends route every item
//! through it, and the adaptation loop re-points a *running* pipeline by
//! [`RoutingTable::install`]ing a new mapping: items already in flight
//! towards an old host are forwarded on arrival (backends check
//! [`RoutingTable::contains`]), new items go straight to the new hosts.
//!
//! ## Epoch snapshots
//!
//! Internally the table is a publish-only cell over an immutable
//! [`RoutingSnapshot`]: every read (routing, host lookups, health
//! checks) goes through the current snapshot, and `install` *publishes
//! a new snapshot* with a bumped epoch instead of mutating in place.
//! Hot paths clone the `Arc` once ([`RoutingTable::snapshot`]) and
//! route lock-free against it, revalidating only when the shared
//! [`RoutingTable::epoch_cell`] says a newer snapshot exists — so a
//! re-map never stalls the data plane behind a lock. Two pieces of
//! state deliberately pierce the snapshot immutability, both atomic so
//! they take `&self`:
//!
//! * per-stage round-robin cursors — selection state, carried forward
//!   across installs for unmoved stages;
//! * per-node down flags — shared by *every* snapshot of the table, so
//!   a fault marked through a fresh snapshot is visible instantly to
//!   readers still holding an older one (fault re-routes must not wait
//!   for an epoch bump).
//!
//! The simulator gets identical (deterministic) round-robin behaviour
//! through the same code.

use adapipe_gridsim::node::NodeId;
use adapipe_mapper::mapping::Mapping;
use adapipe_state::{owner_of, shard_of};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// How the table picks one replica among a stage's hosts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Selection {
    /// Deal items cyclically over the replica set (the paper's scheme;
    /// deterministic given arrival order).
    #[default]
    RoundRobin,
    /// Send each item to the replica with the smallest reported load
    /// (queue depth); ties break towards the lowest node id. Requires
    /// the backend to supply a load probe via
    /// [`RoutingTable::route_least_loaded`].
    LeastLoaded,
}

/// One immutable published generation of the routing state: the mapping
/// in force, its selection cursors, and the (shared) node-health flags.
/// Obtained from [`RoutingTable::snapshot`]; readers route against it
/// lock-free and check [`RoutingSnapshot::epoch`] against the table's
/// [`RoutingTable::epoch_cell`] to detect staleness.
#[derive(Debug)]
pub struct RoutingSnapshot {
    mapping: Mapping,
    /// Per-stage round-robin cursor. Atomic so routing takes `&self`.
    rr: Vec<AtomicUsize>,
    selection: Selection,
    /// Per-node health flag: a down node is skipped by every selection
    /// policy while at least one of the stage's hosts is up. Shared by
    /// every snapshot of the same table (fault transitions must reach
    /// readers of *older* snapshots without waiting for a republish).
    down: Arc<Vec<AtomicBool>>,
    /// Per-stage shard counts for keyed state (`0` = unkeyed). Fixed
    /// for the run (declared at build time), carried across installs,
    /// and consulted lock-free by [`RoutingSnapshot::route_keyed`] on
    /// the hot path.
    shards: Arc<Vec<usize>>,
    /// Generation counter: starts at 0, +1 per install.
    epoch: u64,
}

impl RoutingSnapshot {
    /// This snapshot's generation (0 at table creation, +1 per
    /// [`RoutingTable::install`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The mapping this snapshot routes by.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The selection policy.
    pub fn selection(&self) -> Selection {
        self.selection
    }

    /// Number of stages routed.
    pub fn len(&self) -> usize {
        self.mapping.len()
    }

    /// True if the snapshot routes no stages (not constructible).
    pub fn is_empty(&self) -> bool {
        self.mapping.len() == 0
    }

    /// The replica hosts of `stage`.
    pub fn hosts(&self, stage: usize) -> &[NodeId] {
        self.mapping.placement(stage).hosts()
    }

    /// True if `node` hosts `stage` in this snapshot — backends use
    /// this to detect items that were in flight across a re-mapping
    /// (routed under an older epoch) and must be re-homed.
    pub fn contains(&self, stage: usize, node: NodeId) -> bool {
        self.mapping.placement(stage).contains(node)
    }

    /// Marks `node` down: every selection policy skips it while any
    /// alternative host is alive. Out-of-range nodes are ignored. The
    /// flag is shared across snapshots — see the module docs.
    pub fn mark_down(&self, node: NodeId) {
        if let Some(flag) = self.down.get(node.index()) {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Lifts a [`RoutingSnapshot::mark_down`].
    pub fn mark_up(&self, node: NodeId) {
        if let Some(flag) = self.down.get(node.index()) {
            flag.store(false, Ordering::SeqCst);
        }
    }

    /// True if `node` is currently marked down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down
            .get(node.index())
            .is_some_and(|f| f.load(Ordering::SeqCst))
    }

    /// True if every host of `stage` is currently marked down — routing
    /// cannot avoid a dead destination and items will park until a
    /// re-map rescues them.
    pub fn all_hosts_down(&self, stage: usize) -> bool {
        self.mapping
            .placement(stage)
            .hosts()
            .iter()
            .all(|&h| self.is_down(h))
    }

    /// Picks the destination replica for the next item of `stage`,
    /// always round-robin. Tables configured with
    /// [`Selection::LeastLoaded`] need a load probe — route through
    /// [`RoutingSnapshot::route_with_load`] instead (debug builds
    /// assert this so a least-loaded table cannot silently round-robin).
    pub fn route(&self, stage: usize) -> NodeId {
        debug_assert!(
            self.selection == Selection::RoundRobin,
            "route() ignores the {:?} policy; use route_with_load with a load probe",
            self.selection
        );
        self.route_round_robin(stage)
    }

    fn route_round_robin(&self, stage: usize) -> NodeId {
        let hosts = self.mapping.placement(stage).hosts();
        let k = self.rr[stage].fetch_add(1, Ordering::Relaxed);
        // Skip hosts marked down, scanning from the cursor so live
        // hosts still share the load cyclically. With every host down
        // the plain pick stands: the item parks on schedule and a
        // re-map rescues it.
        for off in 0..hosts.len() {
            let h = hosts[(k + off) % hosts.len()];
            if !self.is_down(h) {
                return h;
            }
        }
        hosts[k % hosts.len()]
    }

    /// Picks the destination replica for the next item of `stage` using
    /// the configured selection policy; `load` reports the backend's
    /// current queue depth per node (only consulted under
    /// [`Selection::LeastLoaded`]).
    pub fn route_with_load(&self, stage: usize, load: impl Fn(NodeId) -> usize) -> NodeId {
        match self.selection {
            Selection::RoundRobin => self.route_round_robin(stage),
            Selection::LeastLoaded => self.route_least_loaded(stage, load),
        }
    }

    /// The declared shard count of `stage` (`0` for unkeyed stages).
    pub fn shard_count(&self, stage: usize) -> usize {
        self.shards.get(stage).copied().unwrap_or(0)
    }

    /// The host owning `shard` of `stage` under this snapshot's
    /// placement: position `shard % width` in the (sorted) host list.
    /// Deterministic in the placement alone — every reader of the same
    /// snapshot agrees, with no cursor and no lock.
    pub fn shard_owner(&self, stage: usize, shard: usize) -> NodeId {
        let hosts = self.mapping.placement(stage).hosts();
        hosts[owner_of(shard, hosts.len())]
    }

    /// Routes an item of a *keyed* stage by its key hash: the key's
    /// shard is fixed for the run, and the shard's owner follows the
    /// current placement. Down flags are deliberately **ignored** —
    /// a key must never detour to a replica that does not own its
    /// state, so items for a dead owner park at its host until a
    /// re-map hands the shard to a live node. Stages with no declared
    /// shard count route by hash over the current width (deterministic,
    /// but keys are not pinned across re-maps).
    pub fn route_keyed(&self, stage: usize, hash: u64) -> NodeId {
        let width = self.mapping.placement(stage).hosts().len();
        let shards = match self.shard_count(stage) {
            0 => width,
            n => n,
        };
        self.shard_owner(stage, shard_of(hash, shards))
    }

    /// Picks the currently least-loaded replica of `stage`.
    ///
    /// Tie-breaking is deterministic: among replicas reporting the
    /// minimal load, the **lowest node id** wins — hosts are stored
    /// sorted and `min_by_key` keeps the first minimum. In particular,
    /// when *all* replicas report equal load (the common cold-start
    /// case), every call routes to the lowest-id host; unlike
    /// round-robin there is no cursor, so repeated ties do not rotate.
    pub fn route_least_loaded(&self, stage: usize, load: impl Fn(NodeId) -> usize) -> NodeId {
        let hosts = self.mapping.placement(stage).hosts();
        hosts
            .iter()
            .filter(|&&h| !self.is_down(h))
            .min_by_key(|&&h| load(h))
            .copied()
            // Every host down: pick the nominal minimum anyway — the
            // item parks on schedule and a re-map rescues it.
            .unwrap_or_else(|| {
                *hosts
                    .iter()
                    .min_by_key(|&&h| load(h))
                    .expect("placement is never empty")
            })
    }
}

/// The shared stage→replica-set routing table: a publish cell over the
/// current [`RoutingSnapshot`]. All read methods delegate to the
/// current snapshot; [`RoutingTable::install`] publishes a new one.
#[derive(Debug)]
pub struct RoutingTable {
    snap: Arc<RoutingSnapshot>,
    /// Mirrors the current snapshot's epoch, shared with readers that
    /// cached an `Arc<RoutingSnapshot>` so they can detect a newer
    /// publication with one atomic load — no lock on the hot path.
    epoch_cell: Arc<AtomicU64>,
}

impl RoutingTable {
    /// Creates a table routing according to `mapping` with round-robin
    /// replica selection. Node health covers the mapping's own hosts;
    /// prefer [`RoutingTable::with_selection`] with the backend's true
    /// node count when faults may name nodes outside the mapping.
    pub fn new(mapping: Mapping) -> Self {
        let nodes = mapping
            .nodes_used()
            .iter()
            .map(|n| n.index() + 1)
            .max()
            .unwrap_or(0);
        Self::with_selection(mapping, Selection::RoundRobin, nodes)
    }

    /// Creates a table with an explicit selection policy over a backend
    /// of `node_count` nodes.
    pub fn with_selection(mapping: Mapping, selection: Selection, node_count: usize) -> Self {
        let down = Arc::new(
            (0..node_count)
                .map(|_| AtomicBool::new(false))
                .collect::<Vec<_>>(),
        );
        Self::with_shared_health(mapping, selection, down)
    }

    /// Creates a table whose node-health flags are the caller's shared
    /// vector rather than a fresh private one. A multi-tenant pool
    /// builds every tenant's table over *one* health vector so a node
    /// marked down through any tenant's snapshot is instantly down for
    /// all of them — pool health is a property of the hardware, not of
    /// one session's view of it.
    pub fn with_shared_health(
        mapping: Mapping,
        selection: Selection,
        down: Arc<Vec<AtomicBool>>,
    ) -> Self {
        let rr = (0..mapping.len()).map(|_| AtomicUsize::new(0)).collect();
        let shards = Arc::new(vec![0; mapping.len()]);
        RoutingTable {
            snap: Arc::new(RoutingSnapshot {
                mapping,
                rr,
                selection,
                down,
                shards,
                epoch: 0,
            }),
            epoch_cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Declares the per-stage shard counts for keyed routing (`0` for
    /// unkeyed stages). Called once before the run starts — the counts
    /// are fixed at build time and republished unchanged by every
    /// [`RoutingTable::install`].
    ///
    /// # Panics
    /// Panics if `shards` does not cover every stage.
    pub fn with_stage_shards(mut self, shards: Vec<usize>) -> Self {
        assert_eq!(shards.len(), self.snap.len(), "shards must cover stages");
        let snap = &self.snap;
        let rr = snap
            .rr
            .iter()
            .map(|c| AtomicUsize::new(c.load(Ordering::Relaxed)))
            .collect();
        self.snap = Arc::new(RoutingSnapshot {
            mapping: snap.mapping.clone(),
            rr,
            selection: snap.selection,
            down: Arc::clone(&snap.down),
            shards: Arc::new(shards),
            epoch: snap.epoch,
        });
        self
    }

    /// The current snapshot: clone the `Arc` once and route lock-free
    /// against it. Compare [`RoutingSnapshot::epoch`] with the value in
    /// [`RoutingTable::epoch_cell`] to know when to re-fetch.
    pub fn snapshot(&self) -> Arc<RoutingSnapshot> {
        Arc::clone(&self.snap)
    }

    /// The shared epoch counter, updated on every [`RoutingTable::install`].
    /// Readers cache it alongside a snapshot so staleness detection is
    /// one `Relaxed`/`Acquire` load — never a lock.
    pub fn epoch_cell(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.epoch_cell)
    }

    /// The current snapshot's epoch.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch
    }

    /// The mapping currently in force.
    pub fn mapping(&self) -> &Mapping {
        self.snap.mapping()
    }

    /// The selection policy.
    pub fn selection(&self) -> Selection {
        self.snap.selection()
    }

    /// Number of stages routed.
    pub fn len(&self) -> usize {
        self.snap.len()
    }

    /// True if the table routes no stages (not constructible).
    pub fn is_empty(&self) -> bool {
        self.snap.is_empty()
    }

    /// The replica hosts of `stage`.
    pub fn hosts(&self, stage: usize) -> &[NodeId] {
        self.snap.hosts(stage)
    }

    /// True if `node` currently hosts `stage` — backends use this to
    /// detect items that were in flight across a re-mapping and must be
    /// forwarded.
    pub fn contains(&self, stage: usize, node: NodeId) -> bool {
        self.snap.contains(stage, node)
    }

    /// Marks `node` down: every selection policy skips it while any
    /// alternative host is alive. Out-of-range nodes are ignored.
    pub fn mark_down(&self, node: NodeId) {
        self.snap.mark_down(node);
    }

    /// Lifts a [`RoutingTable::mark_down`].
    pub fn mark_up(&self, node: NodeId) {
        self.snap.mark_up(node);
    }

    /// True if `node` is currently marked down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.snap.is_down(node)
    }

    /// True if every host of `stage` is currently marked down — routing
    /// cannot avoid a dead destination and items will park until a
    /// re-map rescues them.
    pub fn all_hosts_down(&self, stage: usize) -> bool {
        self.snap.all_hosts_down(stage)
    }

    /// Picks the destination replica for the next item of `stage`,
    /// always round-robin (see [`RoutingSnapshot::route`]).
    pub fn route(&self, stage: usize) -> NodeId {
        self.snap.route(stage)
    }

    /// Picks the destination replica for the next item of `stage` using
    /// the configured selection policy; `load` reports the backend's
    /// current queue depth per node (only consulted under
    /// [`Selection::LeastLoaded`]).
    pub fn route_with_load(&self, stage: usize, load: impl Fn(NodeId) -> usize) -> NodeId {
        self.snap.route_with_load(stage, load)
    }

    /// Picks the currently least-loaded replica of `stage` (see
    /// [`RoutingSnapshot::route_least_loaded`]).
    pub fn route_least_loaded(&self, stage: usize, load: impl Fn(NodeId) -> usize) -> NodeId {
        self.snap.route_least_loaded(stage, load)
    }

    /// The declared shard count of `stage` (`0` for unkeyed stages).
    pub fn shard_count(&self, stage: usize) -> usize {
        self.snap.shard_count(stage)
    }

    /// The host owning `shard` of `stage` under the current mapping
    /// (see [`RoutingSnapshot::shard_owner`]).
    pub fn shard_owner(&self, stage: usize, shard: usize) -> NodeId {
        self.snap.shard_owner(stage, shard)
    }

    /// Routes an item of a keyed stage by its key hash (see
    /// [`RoutingSnapshot::route_keyed`]).
    pub fn route_keyed(&self, stage: usize, hash: u64) -> NodeId {
        self.snap.route_keyed(stage, hash)
    }

    /// Publishes a new snapshot routing by `new` (epoch + 1), returning
    /// the stages whose placement changed. Selection cursors of moved
    /// stages restart at zero so post-remap routing is deterministic;
    /// unmoved stages carry their cursor forward. Readers holding the
    /// old snapshot keep routing by the old mapping until they observe
    /// the epoch bump — their in-flight items re-home on arrival via
    /// the receiving backend's `contains` check.
    pub fn install(&mut self, new: Mapping) -> Vec<usize> {
        assert_eq!(new.len(), self.snap.len(), "mapping length must match");
        let moved = self.snap.mapping.diff(&new);
        let rr = (0..new.len())
            .map(|stage| {
                let cursor = if moved.contains(&stage) {
                    0
                } else {
                    self.snap.rr[stage].load(Ordering::Relaxed)
                };
                AtomicUsize::new(cursor)
            })
            .collect();
        let epoch = self.snap.epoch + 1;
        self.snap = Arc::new(RoutingSnapshot {
            mapping: new,
            rr,
            selection: self.snap.selection,
            down: Arc::clone(&self.snap.down),
            shards: Arc::clone(&self.snap.shards),
            epoch,
        });
        self.epoch_cell.store(epoch, Ordering::Release);
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_mapper::mapping::Placement;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    fn replicated_two() -> RoutingTable {
        RoutingTable::new(Mapping::new(vec![
            Placement::replicated(vec![n(0), n(1)]),
            Placement::single(n(2)),
        ]))
    }

    #[test]
    fn round_robin_cycles_hosts() {
        let rt = replicated_two();
        let picks: Vec<NodeId> = (0..4).map(|_| rt.route(0)).collect();
        assert_eq!(picks, vec![n(0), n(1), n(0), n(1)]);
        assert_eq!(rt.route(1), n(2));
    }

    #[test]
    fn least_loaded_picks_emptiest_replica() {
        let rt = replicated_two();
        let dest = rt.route_least_loaded(0, |h| if h == n(0) { 5 } else { 1 });
        assert_eq!(dest, n(1));
        // Ties break to the lowest id.
        assert_eq!(rt.route_least_loaded(0, |_| 3), n(0));
    }

    #[test]
    fn least_loaded_all_equal_ties_break_to_lowest_id_deterministically() {
        // Three replicas all reporting the same depth: every pick must
        // be the lowest node id, and repeated ties must not rotate
        // (there is no cursor — determinism is positional, not stateful).
        let rt = RoutingTable::with_selection(
            Mapping::new(vec![Placement::replicated(vec![n(2), n(0), n(1)])]),
            Selection::LeastLoaded,
            3,
        );
        for depth in [0, 3, 7] {
            for _ in 0..4 {
                assert_eq!(rt.route_least_loaded(0, |_| depth), n(0));
                assert_eq!(rt.route_with_load(0, |_| depth), n(0));
            }
        }
        // A partial tie among the higher ids still resolves to the
        // lowest id within the tied set.
        let pick = rt.route_least_loaded(0, |h| if h == n(0) { 9 } else { 2 });
        assert_eq!(pick, n(1));
    }

    #[test]
    fn route_with_load_respects_selection() {
        let rr = replicated_two();
        assert_eq!(rr.route_with_load(0, |_| 0), n(0)); // round-robin first pick
        let ll = RoutingTable::with_selection(
            Mapping::new(vec![Placement::replicated(vec![n(0), n(1)])]),
            Selection::LeastLoaded,
            2,
        );
        let dest = ll.route_with_load(0, |h| if h == n(0) { 9 } else { 0 });
        assert_eq!(dest, n(1));
    }

    #[test]
    fn install_reports_moved_stages_and_resets_cursor() {
        let mut rt = replicated_two();
        let _ = rt.route(0); // advance the cursor off zero
        let new = Mapping::new(vec![
            Placement::replicated(vec![n(0), n(1)]),
            Placement::single(n(0)), // stage 1 moves
        ]);
        let moved = rt.install(new);
        assert_eq!(moved, vec![1]);
        // Unmoved stage keeps its cursor (next pick continues the cycle).
        assert_eq!(rt.route(0), n(1));
        assert_eq!(rt.route(1), n(0));
    }

    #[test]
    fn contains_tracks_current_mapping() {
        let mut rt = replicated_two();
        assert!(rt.contains(1, n(2)));
        let moved = rt.install(Mapping::new(vec![
            Placement::replicated(vec![n(0), n(1)]),
            Placement::single(n(1)),
        ]));
        assert_eq!(moved, vec![1]);
        assert!(!rt.contains(1, n(2)));
        assert!(rt.contains(1, n(1)));
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn install_rejects_wrong_arity() {
        let mut rt = replicated_two();
        rt.install(Mapping::new(vec![Placement::single(n(0))]));
    }

    #[test]
    fn round_robin_skips_down_hosts() {
        let rt = replicated_two();
        rt.mark_down(n(0));
        assert!(rt.is_down(n(0)));
        // Every pick lands on the surviving replica.
        let picks: Vec<NodeId> = (0..4).map(|_| rt.route(0)).collect();
        assert_eq!(picks, vec![n(1); 4]);
        // Recovery restores the cycle over both hosts.
        rt.mark_up(n(0));
        let picks: Vec<NodeId> = (0..4).map(|_| rt.route(0)).collect();
        assert!(picks.contains(&n(0)) && picks.contains(&n(1)));
    }

    #[test]
    fn least_loaded_skips_down_hosts() {
        let rt = RoutingTable::with_selection(
            Mapping::new(vec![Placement::replicated(vec![n(0), n(1)])]),
            Selection::LeastLoaded,
            2,
        );
        // Node 0 is emptier but down: the pick must avoid it.
        rt.mark_down(n(0));
        let pick = rt.route_least_loaded(0, |h| if h == n(0) { 0 } else { 9 });
        assert_eq!(pick, n(1));
    }

    #[test]
    fn all_hosts_down_falls_back_to_nominal_pick() {
        let rt = replicated_two();
        rt.mark_down(n(0));
        rt.mark_down(n(1));
        assert!(rt.all_hosts_down(0));
        assert!(!rt.all_hosts_down(1), "stage 1's host n2 is alive");
        // The pick still lands on a declared host (items park there
        // until a re-map rescues them) rather than panicking.
        let pick = rt.route(0);
        assert!([n(0), n(1)].contains(&pick));
    }

    #[test]
    fn down_marks_outside_node_range_are_ignored() {
        let rt = replicated_two();
        rt.mark_down(NodeId(99));
        assert!(!rt.is_down(NodeId(99)));
        assert_eq!(rt.route(1), n(2));
    }

    #[test]
    fn shared_health_spans_tables() {
        // Two tenants' tables built over one health vector: a fault
        // marked through either one is down for both instantly.
        let down = Arc::new((0..3).map(|_| AtomicBool::new(false)).collect::<Vec<_>>());
        let a = RoutingTable::with_shared_health(
            Mapping::new(vec![Placement::replicated(vec![n(0), n(1)])]),
            Selection::RoundRobin,
            Arc::clone(&down),
        );
        let b = RoutingTable::with_shared_health(
            Mapping::new(vec![Placement::single(n(0)), Placement::single(n(2))]),
            Selection::RoundRobin,
            Arc::clone(&down),
        );
        a.mark_down(n(0));
        assert!(b.is_down(n(0)), "tenant B sees tenant A's fault mark");
        let picks: Vec<NodeId> = (0..4).map(|_| a.route(0)).collect();
        assert_eq!(picks, vec![n(1); 4]);
        b.mark_up(n(0));
        assert!(!a.is_down(n(0)), "recovery through B reaches A");
    }

    #[test]
    fn keyed_routing_pins_keys_to_shard_owners() {
        let rt = RoutingTable::new(Mapping::new(vec![
            Placement::replicated(vec![n(0), n(1)]),
            Placement::single(n(2)),
        ]))
        .with_stage_shards(vec![4, 0]);
        assert_eq!(rt.shard_count(0), 4);
        // Shards deal over the hosts by index: 0→n0, 1→n1, 2→n0, 3→n1.
        assert_eq!(rt.shard_owner(0, 0), n(0));
        assert_eq!(rt.shard_owner(0, 3), n(1));
        // A key's route is a pure function of (hash, placement): hash 6
        // → shard 2 → owner n0, every single time.
        for _ in 0..4 {
            assert_eq!(rt.route_keyed(0, 6), n(0));
            assert_eq!(rt.route_keyed(0, 7), n(1));
        }
        // Down flags do NOT detour keyed items — the owner holds the
        // key's state, so items park there until a re-map moves it.
        rt.mark_down(n(0));
        assert_eq!(rt.route_keyed(0, 6), n(0));
    }

    #[test]
    fn shard_counts_survive_install() {
        let mut rt = RoutingTable::new(Mapping::new(vec![Placement::single(n(0))]))
            .with_stage_shards(vec![4]);
        // Widening 1 → 2 re-deals the shards: only shards whose owner
        // index changed (the odd ones) land on the new host.
        let moved = rt.install(Mapping::new(vec![Placement::replicated(vec![n(0), n(1)])]));
        assert_eq!(moved, vec![0]);
        assert_eq!(rt.shard_count(0), 4, "shard map carried across installs");
        assert_eq!(rt.shard_owner(0, 0), n(0));
        assert_eq!(rt.shard_owner(0, 1), n(1));
        assert_eq!(rt.shard_owner(0, 2), n(0));
        assert_eq!(rt.shard_owner(0, 3), n(1));
    }

    #[test]
    fn unkeyed_stages_route_by_hash_over_width() {
        let rt = replicated_two();
        assert_eq!(rt.route_keyed(0, 2), n(0));
        assert_eq!(rt.route_keyed(0, 3), n(1));
        assert_eq!(rt.route_keyed(1, 999), n(2));
    }

    #[test]
    fn install_publishes_a_new_epoch_snapshot() {
        let mut rt = replicated_two();
        let cell = rt.epoch_cell();
        let before = rt.snapshot();
        assert_eq!(before.epoch(), 0);
        assert_eq!(cell.load(Ordering::Acquire), 0);

        let moved = rt.install(Mapping::new(vec![
            Placement::replicated(vec![n(0), n(1)]),
            Placement::single(n(0)),
        ]));
        assert_eq!(moved, vec![1]);
        let after = rt.snapshot();
        assert_eq!(after.epoch(), 1);
        assert_eq!(cell.load(Ordering::Acquire), 1, "cell mirrors the epoch");

        // The retired snapshot is immutable: it still routes the old
        // mapping (in-flight items drain against their epoch)...
        assert!(before.contains(1, n(2)));
        assert!(!after.contains(1, n(2)));
        assert!(after.contains(1, n(0)));
    }

    #[test]
    fn down_flags_are_shared_across_snapshots() {
        let mut rt = replicated_two();
        let old = rt.snapshot();
        rt.install(Mapping::new(vec![
            Placement::replicated(vec![n(0), n(1)]),
            Placement::single(n(1)),
        ]));
        // A fault marked through the *new* generation reaches a reader
        // still routing by the old snapshot instantly — no republish.
        rt.mark_down(n(0));
        assert!(old.is_down(n(0)));
        let picks: Vec<NodeId> = (0..4).map(|_| old.route(0)).collect();
        assert_eq!(picks, vec![n(1); 4], "stale snapshot skips the dead host");
        // And the other way round: a mark through the old snapshot is
        // seen by the current table.
        old.mark_up(n(0));
        assert!(!rt.is_down(n(0)));
    }
}
