//! Property-style tests for the simulated engine: determinism,
//! conservation, and model agreement.
//!
//! The workspace builds offline, so instead of a property-testing
//! framework these sweep each property over a deterministic fan of
//! seeded cases (the seeds drive `adapipe_gridsim::rng`). Failures
//! print the offending case, which reproduces exactly.

use adapipe_core::prelude::*;
use adapipe_core::simengine::run as sim_run;
use adapipe_gridsim::prelude::*;
use adapipe_gridsim::rng::{unit_at, Rng64};
use adapipe_mapper::prelude::*;

fn uniform_grid(np: usize, speeds_seed: u64) -> GridSpec {
    let nodes = (0..np)
        .map(|i| {
            let speed = 0.5 + 3.5 * unit_at(speeds_seed, i as u64);
            Node::new(NodeSpec::new(format!("n{i}"), speed, 1), LoadModel::free())
        })
        .collect();
    GridSpec::new(nodes, Topology::uniform(np, LinkSpec::lan()))
}

/// Two identical runs produce identical reports, even with adaptive
/// policies and noisy observation.
#[test]
fn simulation_is_deterministic() {
    for case in 0..12u64 {
        let mut rng = Rng64::new(0xD0_0D + case);
        let seed = rng.next_u64();
        let items = 10 + rng.next_range(190) as u64;
        let ns = 1 + rng.next_range(4);
        let noise = 0.2 * rng.next_unit();
        let grid = testbed_hetero8(seed);
        let spec = PipelineSpec::balanced(ns, 1.0, 5_000);
        let cfg = SimConfig {
            items,
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            observation_noise: noise,
            noise_seed: seed,
            ..SimConfig::default()
        };
        let a = sim_run(&grid, &spec, &cfg);
        let b = sim_run(&grid, &spec, &cfg);
        assert_eq!(a.completed, b.completed, "case {case}");
        assert_eq!(a.makespan, b.makespan, "case {case}");
        assert_eq!(a.adaptations.len(), b.adaptations.len(), "case {case}");
        assert_eq!(a.mean_latency, b.mean_latency, "case {case}");
    }
}

/// Conservation: on a live grid every item completes exactly once.
#[test]
fn all_items_complete_exactly_once() {
    for case in 0..24u64 {
        let mut rng = Rng64::new(0xC0_FFEE + case);
        let speeds_seed = rng.next_u64();
        let items = 1 + rng.next_range(299) as u64;
        let ns = 1 + rng.next_range(5);
        let np = 1 + rng.next_range(5);
        let grid = uniform_grid(np, speeds_seed);
        let spec = PipelineSpec::balanced(ns, 0.5, 1_000);
        let report = sim_run(
            &grid,
            &spec,
            &SimConfig {
                items,
                ..SimConfig::default()
            },
        );
        assert_eq!(report.completed, items, "case {case} (ns={ns} np={np})");
        assert!(!report.truncated, "case {case}");
        assert_eq!(report.timeline.total(), items, "case {case}");
    }
}

/// Makespan is monotone in stream length.
#[test]
fn makespan_grows_with_stream_length() {
    for case in 0..12u64 {
        let mut rng = Rng64::new(0xFACE + case);
        let speeds_seed = rng.next_u64();
        let n1 = 1 + rng.next_range(149) as u64;
        let extra = 1 + rng.next_range(149) as u64;
        let grid = uniform_grid(3, speeds_seed);
        let spec = PipelineSpec::balanced(3, 1.0, 1_000);
        let run = |items| {
            sim_run(
                &grid,
                &spec,
                &SimConfig {
                    items,
                    ..SimConfig::default()
                },
            )
        };
        let a = run(n1);
        let b = run(n1 + extra);
        assert!(
            b.makespan >= a.makespan,
            "case {case} (n1={n1} extra={extra})"
        );
    }
}

/// On a static load-free grid the analytic model predicts simulated
/// makespan within 10 % for any mapping (uniform work, modest data).
#[test]
fn model_agrees_with_simulation() {
    for case in 0..16u64 {
        let mut rng = Rng64::new(0xAB1E + case);
        let speeds_seed = rng.next_u64();
        let ns = 1 + rng.next_range(4);
        let np = 1 + rng.next_range(3);
        let assignment_seed = rng.next_u64();
        let grid = uniform_grid(np, speeds_seed);
        let spec = PipelineSpec::balanced(ns, 1.0, 10_000);
        let assignment: Vec<NodeId> = (0..ns)
            .map(|s| NodeId((assignment_seed as usize).wrapping_add(s * 7) % np))
            .collect();
        let mapping = Mapping::from_assignment(&assignment);
        let profile = spec.profile();
        let rates = grid.rates_at(SimTime::ZERO);
        let pred = evaluate(&profile, &mapping, &rates, grid.topology());

        let items = 300u64;
        let report = sim_run(
            &grid,
            &spec,
            &SimConfig {
                items,
                initial_mapping: Some(mapping),
                ..SimConfig::default()
            },
        );
        let predicted = pred.completion_time(items);
        let simulated = report.makespan.as_secs_f64();
        let err = (predicted - simulated).abs() / simulated.max(1e-9);
        assert!(
            err < 0.10,
            "case {case}: model {predicted:.2}s vs sim {simulated:.2}s ({:.1}% off)",
            err * 100.0
        );
    }
}

/// The adaptive policy never loses badly to static on any seeded
/// hetero8 grid: hysteresis bounds the cost of adaptation.
#[test]
fn adaptation_never_loses_badly() {
    for case in 0..10u64 {
        let seed = Rng64::new(0xBEEF + case).next_u64();
        let spec = PipelineSpec::balanced(4, 1.0, 5_000);
        let items = 200u64;
        let grid = testbed_hetero8(seed);
        let static_r = sim_run(
            &grid,
            &spec,
            &SimConfig {
                items,
                ..SimConfig::default()
            },
        );
        let adaptive_r = sim_run(
            &grid,
            &spec,
            &SimConfig {
                items,
                policy: Policy::Periodic {
                    interval: SimDuration::from_secs(5),
                },
                ..SimConfig::default()
            },
        );
        assert_eq!(adaptive_r.completed, items);
        assert!(
            adaptive_r.makespan.as_secs_f64() <= static_r.makespan.as_secs_f64() * 1.25,
            "adaptive {} vs static {} (seed {seed})",
            adaptive_r.makespan,
            static_r.makespan
        );
    }
}

/// Work models: drawn work is always within the declared spread.
#[test]
fn uniform_work_respects_bounds() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0x50_50 + case);
        let mean = 0.1 + 9.9 * rng.next_unit();
        let spread = 0.9 * rng.next_unit();
        let seed = rng.next_u64();
        let item = rng.next_u64();
        let w = UniformWork::new(mean, spread, seed);
        let v = w.draw(item);
        assert!(v >= mean * (1.0 - spread) - 1e-12, "case {case}");
        assert!(v <= mean * (1.0 + spread) + 1e-12, "case {case}");
    }
}
