//! Stage-to-processor mappings.
//!
//! A [`Mapping`] records, for every pipeline stage, the set of grid nodes
//! hosting it. One host is the common case; multiple hosts mean the stage
//! is *replicated* (legal only for stateless stages — enforced by the
//! planner, not by this type) with items dealt round-robin among the
//! hosts. Consecutive stages sharing a host are *coalesced*: items move
//! between them without touching the network.

use adapipe_gridsim::node::NodeId;
use std::fmt;

/// The hosts of one stage. Invariant: non-empty, sorted, deduplicated.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Placement {
    hosts: Vec<NodeId>,
}

impl Placement {
    /// A stage hosted on a single node.
    pub fn single(node: NodeId) -> Self {
        Placement { hosts: vec![node] }
    }

    /// A stage replicated over `hosts`.
    ///
    /// # Panics
    /// Panics if `hosts` is empty. Duplicates are removed.
    pub fn replicated(mut hosts: Vec<NodeId>) -> Self {
        assert!(!hosts.is_empty(), "placement needs at least one host");
        hosts.sort_unstable();
        hosts.dedup();
        Placement { hosts }
    }

    /// The hosts, sorted by node id.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Number of replicas (≥ 1).
    pub fn width(&self) -> usize {
        self.hosts.len()
    }

    /// True if the stage runs on exactly one node.
    pub fn is_single(&self) -> bool {
        self.hosts.len() == 1
    }

    /// The lowest-numbered host; the stage's "home" for migration
    /// accounting.
    pub fn primary(&self) -> NodeId {
        self.hosts[0]
    }

    /// True if `node` hosts this stage.
    pub fn contains(&self, node: NodeId) -> bool {
        self.hosts.binary_search(&node).is_ok()
    }

    /// Adds a replica host; no-op if already present.
    pub fn add_host(&mut self, node: NodeId) {
        if let Err(pos) = self.hosts.binary_search(&node) {
            self.hosts.insert(pos, node);
        }
    }

    /// Removes a replica host; no-op if absent.
    ///
    /// # Panics
    /// Panics if this would leave the placement empty.
    pub fn remove_host(&mut self, node: NodeId) {
        if let Ok(pos) = self.hosts.binary_search(&node) {
            assert!(
                self.hosts.len() > 1,
                "cannot remove the last host of a stage"
            );
            self.hosts.remove(pos);
        }
    }
}

impl fmt::Debug for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hosts.len() == 1 {
            write!(f, "{}", self.hosts[0])
        } else {
            write!(f, "{{")?;
            for (i, h) in self.hosts.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{h}")?;
            }
            write!(f, "}}")
        }
    }
}

/// A complete stage-to-node mapping for a pipeline of `len()` stages.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    placements: Vec<Placement>,
}

impl Mapping {
    /// Builds a mapping from per-stage placements.
    ///
    /// # Panics
    /// Panics if `placements` is empty.
    pub fn new(placements: Vec<Placement>) -> Self {
        assert!(!placements.is_empty(), "mapping needs at least one stage");
        Mapping { placements }
    }

    /// One node per stage, no replication: `assignment[s]` hosts stage `s`.
    pub fn from_assignment(assignment: &[NodeId]) -> Self {
        Mapping::new(assignment.iter().map(|&n| Placement::single(n)).collect())
    }

    /// The classic static mapping: stage `s` on node `s % np`.
    pub fn round_robin(stages: usize, np: usize) -> Self {
        assert!(stages > 0 && np > 0);
        Mapping::from_assignment(&(0..stages).map(|s| NodeId(s % np)).collect::<Vec<_>>())
    }

    /// Every stage on one node (the fully coalesced mapping).
    pub fn all_on(node: NodeId, stages: usize) -> Self {
        assert!(stages > 0);
        Mapping::from_assignment(&vec![node; stages])
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True if the mapping covers no stages (not constructible).
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Placement of stage `s`.
    pub fn placement(&self, s: usize) -> &Placement {
        &self.placements[s]
    }

    /// Mutable placement of stage `s`.
    pub fn placement_mut(&mut self, s: usize) -> &mut Placement {
        &mut self.placements[s]
    }

    /// All placements in stage order.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Iterator over every node used by any stage, deduplicated.
    pub fn nodes_used(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .placements
            .iter()
            .flat_map(|p| p.hosts().iter().copied())
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Total replica count across stages (= number of stage instances).
    pub fn total_width(&self) -> usize {
        self.placements.iter().map(Placement::width).sum()
    }

    /// True if no stage is replicated.
    pub fn is_unreplicated(&self) -> bool {
        self.placements.iter().all(Placement::is_single)
    }

    /// True if consecutive stages `s` and `s+1` share their (single)
    /// host — i.e. the boundary is coalesced and costs no network
    /// transfer.
    pub fn is_coalesced(&self, s: usize) -> bool {
        assert!(s + 1 < self.placements.len(), "boundary out of range");
        self.placements[s].is_single()
            && self.placements[s + 1].is_single()
            && self.placements[s].primary() == self.placements[s + 1].primary()
    }

    /// The stages whose placement differs between `self` and `other` —
    /// the stages a re-mapping must migrate.
    ///
    /// # Panics
    /// Panics if the mappings have different stage counts.
    pub fn diff(&self, other: &Mapping) -> Vec<usize> {
        assert_eq!(
            self.len(),
            other.len(),
            "mappings cover different pipelines"
        );
        (0..self.len())
            .filter(|&s| self.placements[s] != other.placements[s])
            .collect()
    }

    /// Parses the tuple notation produced by [`Mapping::notation`]:
    /// `(n0 n0 n2)` or `(n0 {n1,n2} n3)`. Whitespace between placements
    /// is flexible; node ids must be `n<digits>`.
    ///
    /// # Errors
    /// Returns a description of the first malformed token.
    pub fn parse(text: &str) -> Result<Mapping, String> {
        let inner = text
            .trim()
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| format!("mapping must be parenthesised: {text:?}"))?;
        let parse_node = |tok: &str| -> Result<NodeId, String> {
            let digits = tok
                .strip_prefix('n')
                .ok_or_else(|| format!("node id must start with 'n': {tok:?}"))?;
            digits
                .parse::<usize>()
                .map(NodeId)
                .map_err(|_| format!("bad node index in {tok:?}"))
        };
        let mut placements = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            if let Some(tail) = rest.strip_prefix('{') {
                let end = tail
                    .find('}')
                    .ok_or_else(|| format!("unterminated replica set in {text:?}"))?;
                let hosts = tail[..end]
                    .split(',')
                    .map(|t| parse_node(t.trim()))
                    .collect::<Result<Vec<_>, _>>()?;
                if hosts.is_empty() {
                    return Err(format!("empty replica set in {text:?}"));
                }
                placements.push(Placement::replicated(hosts));
                rest = tail[end + 1..].trim_start();
            } else {
                let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
                placements.push(Placement::single(parse_node(&rest[..end])?));
                rest = rest[end..].trim_start();
            }
        }
        if placements.is_empty() {
            return Err("mapping needs at least one stage".to_string());
        }
        Ok(Mapping::new(placements))
    }

    /// Compact text form, e.g. `(n0 n0 n2)` or `(n0 {n1,n2} n3)` —
    /// mirrors the tuple notation mapping studies use.
    pub fn notation(&self) -> String {
        let mut out = String::from("(");
        for (i, p) in self.placements.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{p:?}"));
        }
        out.push(')');
        out
    }
}

impl fmt::Debug for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.notation())
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.notation())
    }
}

/// A partition of stages into contiguous groups, each on one node —
/// the restricted space the DP optimiser searches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContiguousMapping {
    /// `group_end[g]` = one past the last stage of group `g`;
    /// strictly increasing, last element = stage count.
    group_end: Vec<usize>,
    /// Host of each group; same length as `group_end`.
    nodes: Vec<NodeId>,
}

impl ContiguousMapping {
    /// Builds a contiguous mapping.
    ///
    /// # Panics
    /// Panics on empty/inconsistent group structure.
    pub fn new(group_end: Vec<usize>, nodes: Vec<NodeId>) -> Self {
        assert!(!group_end.is_empty(), "need at least one group");
        assert_eq!(group_end.len(), nodes.len(), "one node per group");
        assert!(group_end[0] > 0, "first group must be non-empty");
        assert!(
            group_end.windows(2).all(|w| w[0] < w[1]),
            "group ends must be strictly increasing"
        );
        ContiguousMapping { group_end, nodes }
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.nodes.len()
    }

    /// Stage range `[start, end)` of group `g`.
    pub fn group_range(&self, g: usize) -> (usize, usize) {
        let start = if g == 0 { 0 } else { self.group_end[g - 1] };
        (start, self.group_end[g])
    }

    /// Host of group `g`.
    pub fn group_node(&self, g: usize) -> NodeId {
        self.nodes[g]
    }

    /// Expands to a full per-stage [`Mapping`].
    pub fn to_mapping(&self) -> Mapping {
        let stages = *self.group_end.last().expect("non-empty");
        let mut assignment = Vec::with_capacity(stages);
        for g in 0..self.groups() {
            let (start, end) = self.group_range(g);
            for _ in start..end {
                assignment.push(self.nodes[g]);
            }
        }
        Mapping::from_assignment(&assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn placement_sorts_and_dedups() {
        let p = Placement::replicated(vec![n(3), n(1), n(3)]);
        assert_eq!(p.hosts(), &[n(1), n(3)]);
        assert_eq!(p.width(), 2);
        assert_eq!(p.primary(), n(1));
        assert!(p.contains(n(3)));
        assert!(!p.contains(n(2)));
    }

    #[test]
    fn placement_add_remove_hosts() {
        let mut p = Placement::single(n(0));
        p.add_host(n(2));
        p.add_host(n(2)); // idempotent
        assert_eq!(p.hosts(), &[n(0), n(2)]);
        p.remove_host(n(0));
        assert_eq!(p.hosts(), &[n(2)]);
        p.remove_host(n(9)); // absent: no-op
        assert_eq!(p.width(), 1);
    }

    #[test]
    #[should_panic(expected = "last host")]
    fn removing_last_host_panics() {
        let mut p = Placement::single(n(0));
        p.remove_host(n(0));
    }

    #[test]
    fn round_robin_wraps() {
        let m = Mapping::round_robin(5, 2);
        let hosts: Vec<NodeId> = (0..5).map(|s| m.placement(s).primary()).collect();
        assert_eq!(hosts, vec![n(0), n(1), n(0), n(1), n(0)]);
    }

    #[test]
    fn coalescing_detected_on_shared_single_hosts() {
        let m = Mapping::from_assignment(&[n(0), n(0), n(1)]);
        assert!(m.is_coalesced(0));
        assert!(!m.is_coalesced(1));
    }

    #[test]
    fn replicated_boundary_is_not_coalesced() {
        let m = Mapping::new(vec![
            Placement::single(n(0)),
            Placement::replicated(vec![n(0), n(1)]),
        ]);
        assert!(!m.is_coalesced(0));
        assert!(!m.is_unreplicated());
        assert_eq!(m.total_width(), 3);
    }

    #[test]
    fn nodes_used_deduplicates() {
        let m = Mapping::new(vec![
            Placement::single(n(2)),
            Placement::replicated(vec![n(0), n(2)]),
        ]);
        assert_eq!(m.nodes_used(), vec![n(0), n(2)]);
    }

    #[test]
    fn diff_lists_changed_stages() {
        let a = Mapping::from_assignment(&[n(0), n(1), n(2)]);
        let b = Mapping::from_assignment(&[n(0), n(2), n(2)]);
        assert_eq!(a.diff(&b), vec![1]);
        assert_eq!(a.diff(&a), Vec::<usize>::new());
    }

    #[test]
    fn notation_matches_tuple_style() {
        let m = Mapping::new(vec![
            Placement::single(n(0)),
            Placement::replicated(vec![n(1), n(2)]),
            Placement::single(n(3)),
        ]);
        assert_eq!(m.notation(), "(n0 {n1,n2} n3)");
    }

    #[test]
    fn notation_round_trips_through_parse() {
        for text in ["(n0)", "(n0 n1 n2)", "(n0 {n1,n2} n3)", "({n0,n5})"] {
            let m = Mapping::parse(text).expect(text);
            assert_eq!(m.notation(), text, "round trip of {text}");
        }
    }

    #[test]
    fn parse_tolerates_extra_whitespace() {
        let m = Mapping::parse("  ( n0   {n1, n2}  n3 ) ").unwrap();
        assert_eq!(m.notation(), "(n0 {n1,n2} n3)");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Mapping::parse("n0 n1").is_err(), "missing parens");
        assert!(Mapping::parse("(x0)").is_err(), "bad prefix");
        assert!(Mapping::parse("(n0 {n1)").is_err(), "unterminated set");
        assert!(Mapping::parse("()").is_err(), "empty mapping");
        assert!(Mapping::parse("(n)").is_err(), "missing index");
    }

    #[test]
    fn contiguous_expands_correctly() {
        // Stages 0-1 on n2, stage 2 on n0.
        let c = ContiguousMapping::new(vec![2, 3], vec![n(2), n(0)]);
        assert_eq!(c.groups(), 2);
        assert_eq!(c.group_range(0), (0, 2));
        assert_eq!(c.group_range(1), (2, 3));
        let m = c.to_mapping();
        assert_eq!(m.len(), 3);
        assert_eq!(m.placement(0).primary(), n(2));
        assert_eq!(m.placement(1).primary(), n(2));
        assert_eq!(m.placement(2).primary(), n(0));
        assert!(m.is_coalesced(0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_group_structure_panics() {
        let _ = ContiguousMapping::new(vec![2, 2], vec![n(0), n(1)]);
    }

    #[test]
    #[should_panic(expected = "different pipelines")]
    fn diff_on_mismatched_lengths_panics() {
        let a = Mapping::from_assignment(&[n(0)]);
        let b = Mapping::from_assignment(&[n(0), n(1)]);
        let _ = a.diff(&b);
    }
}
