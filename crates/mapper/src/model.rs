//! The analytic performance model.
//!
//! The adaptive pattern predicts steady-state pipeline throughput for a
//! candidate [`Mapping`] from (a) forecast per-node effective rates and
//! (b) the link cost matrix. The model is the classic bottleneck
//! argument: in steady state every item visits every stage, so each
//! resource's *busy time per item* can be summed directly, and throughput
//! is the reciprocal of the busiest resource.
//!
//! Communication is assumed overlapped with computation (links and CPUs
//! are separate resources); contention inside a link direction is what
//! the simulator adds on top, and experiment T2 quantifies the gap.

use crate::graph::{Next, Segment, StageGraph};
use crate::mapping::Mapping;
use adapipe_gridsim::net::Topology;
use adapipe_gridsim::node::NodeId;

/// Static per-pipeline quantities the model needs.
#[derive(Clone, Debug)]
pub struct PipelineProfile {
    /// Work units each stage spends per item (`len = Ns`).
    pub stage_work: Vec<f64>,
    /// Bytes crossing each stage boundary per item (`len = Ns + 1`):
    /// index `0` is the input arriving at the entry stage(s), index
    /// `s + 1` the output leaving stage `s`. Which boundaries become
    /// network *edges* is decided by [`PipelineProfile::graph`].
    pub boundary_bytes: Vec<u64>,
    /// The series-parallel stage topology over flattened stage ids.
    /// [`StageGraph::linear`] reproduces the historical chain exactly.
    pub graph: StageGraph,
    /// Which stages may run more than one live instance: truly
    /// stateless stages, plus *declared* keyed or accumulator state
    /// (the runtime shards or merges it behind the planner's back).
    /// Exclusive and opaque state pins a stage to width one.
    pub stateless: Vec<bool>,
    /// Per-stage replica-width caps declared by the programmer
    /// (`len = Ns`, every entry ≥ 1). `usize::MAX` leaves the width to
    /// the planner's global `max_width`; exclusive/opaque stages carry
    /// `1`, and keyed stages their shard count (a width change there
    /// is a shard rebalance, executed as live migration).
    pub replica_cap: Vec<usize>,
    /// Node where inputs originate; `None` ignores input-edge transfer.
    pub source: Option<NodeId>,
    /// Node where outputs are delivered; `None` ignores output-edge
    /// transfer.
    pub sink: Option<NodeId>,
    /// True when the executing backend *fuses* co-located stateless
    /// chain edges into direct calls (the threaded engine does; the
    /// simulator routes every boundary through its link model, self
    /// links included). Only a fusing backend may claim the fused-edge
    /// latency discount — otherwise the model would under-charge
    /// co-location and the planner's latency tie-break would steer
    /// toward mappings the backend cannot actually make cheap.
    pub fuses_colocated: bool,
}

impl PipelineProfile {
    /// Builds a profile with uniform boundary sizes and all stages
    /// stateless — the common synthetic-workload shape.
    pub fn uniform(stage_work: Vec<f64>, bytes_per_item: u64) -> Self {
        let ns = stage_work.len();
        assert!(ns > 0, "pipeline needs at least one stage");
        PipelineProfile {
            boundary_bytes: vec![bytes_per_item; ns + 1],
            stateless: vec![true; ns],
            replica_cap: vec![usize::MAX; ns],
            graph: StageGraph::linear(ns),
            stage_work,
            source: None,
            sink: None,
            fuses_colocated: false,
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.stage_work.len()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics if lengths disagree or any work value is negative.
    pub fn validate(&self) {
        let ns = self.stage_work.len();
        assert!(ns > 0, "pipeline needs at least one stage");
        assert_eq!(
            self.boundary_bytes.len(),
            ns + 1,
            "need Ns+1 boundary sizes"
        );
        assert_eq!(
            self.stateless.len(),
            ns,
            "need one statefulness flag per stage"
        );
        assert_eq!(self.replica_cap.len(), ns, "need one replica cap per stage");
        assert!(
            self.replica_cap.iter().all(|&c| c >= 1),
            "replica caps must be at least 1"
        );
        assert!(
            self.stage_work.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "stage work must be non-negative and finite"
        );
        self.graph.validate(ns);
    }

    /// Total work per item across all stages.
    pub fn total_work(&self) -> f64 {
        self.stage_work.iter().sum()
    }
}

/// True when the executing backend would *fuse* the edge `from → to`
/// under `mapping`: the backend fuses at all (`fuses_colocated`, set by
/// the threaded engine and nothing else), `to` is `from`'s sole linear
/// successor, declared stateless, and both stages sit unreplicated on
/// the same host. A fused boundary is a direct call — no envelope, no
/// inbox hop — so the model charges it no transfer latency. (The engine
/// additionally requires a default resilience policy on the successor,
/// which the profile does not carry; a resilient stage that is also
/// stateless and co-located is rare enough that the latency term's
/// optimism there is noise — and latency only tie-breaks candidate
/// rankings anyway.) Same-host hops never contributed to the link busy
/// budget, so the throughput term is untouched.
fn fused_edge(profile: &PipelineProfile, mapping: &Mapping, from: usize, to: usize) -> bool {
    if !profile.fuses_colocated || !profile.stateless[to] {
        return false;
    }
    // `Next::Stage` structurally implies `to` has in-degree 1: fan-out
    // and join boundaries never take this form.
    if !matches!(profile.graph.after(from), Next::Stage(t) if t == to) {
        return false;
    }
    let fh = mapping.placement(from).hosts();
    let th = mapping.placement(to).hosts();
    fh.len() == 1 && th.len() == 1 && fh[0] == th[0]
}

/// Which resource limits throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bottleneck {
    /// A processor saturates first.
    Node(NodeId),
    /// A network link (direction `src → dst`) saturates first.
    Link(NodeId, NodeId),
}

/// Model output for one candidate mapping.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Steady-state items per second.
    pub throughput: f64,
    /// One-item traversal latency in seconds (no queueing).
    pub latency: f64,
    /// The saturating resource.
    pub bottleneck: Bottleneck,
    /// Busy seconds per item on each node (`len = Np`).
    pub node_load: Vec<f64>,
}

impl Prediction {
    /// Estimated makespan for a stream of `n` items: fill the pipe once,
    /// then drain one item per bottleneck period.
    pub fn completion_time(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        if self.throughput <= 0.0 {
            return f64::INFINITY;
        }
        self.latency + (n - 1) as f64 / self.throughput
    }
}

/// Evaluates `mapping` against per-node effective `rates` (work units per
/// second, already scaled by predicted availability) and the `topology`.
///
/// Returns a [`Prediction`]; a mapping that uses a node with rate ≤ 0
/// yields zero throughput and infinite latency rather than an error, so
/// optimisers can rank it (last) without special cases.
///
/// # Panics
/// Panics if the profile is inconsistent, the mapping's stage count
/// differs from the profile's, or a mapped node index is out of range.
pub fn evaluate(
    profile: &PipelineProfile,
    mapping: &Mapping,
    rates: &[f64],
    topology: &Topology,
) -> Prediction {
    profile.validate();
    let ns = profile.stages();
    assert_eq!(
        mapping.len(),
        ns,
        "mapping covers {} stages, profile {ns}",
        mapping.len()
    );
    for node in mapping.nodes_used() {
        assert!(
            node.index() < rates.len(),
            "node {node} outside rate vector"
        );
        assert!(
            node.index() < topology.len(),
            "node {node} outside topology"
        );
    }

    // --- Node busy time per item -------------------------------------
    let mut node_load = vec![0.0f64; rates.len()];
    let mut dead_node_used = false;
    for s in 0..ns {
        let placement = mapping.placement(s);
        let share = 1.0 / placement.width() as f64;
        for &host in placement.hosts() {
            let rate = rates[host.index()];
            if rate <= 0.0 {
                dead_node_used = true;
            } else {
                node_load[host.index()] += profile.stage_work[s] / rate * share;
            }
        }
    }

    // --- Link busy time per item --------------------------------------
    // Expected seconds per item for each directed link, accumulated over
    // the stage graph's *edges* (for the linear chain these are exactly
    // the stage boundaries); same-host hops use the (cheap) self link.
    // A dense np×np accumulator: `evaluate` is the optimisers' inner
    // loop, and a HashMap here dominated planning time on 32-node grids.
    let np = rates.len().max(topology.len());
    let mut max_link: (f64, NodeId, NodeId) = (0.0, NodeId(0), NodeId(0));
    let mut total_comm_latency = 0.0f64;
    let mut graph_latency = 0.0f64;
    let mut link_seconds = vec![0.0f64; np * np];
    if profile.graph.is_linear() {
        let mut add_boundary = |from_hosts: &[NodeId], to_hosts: &[NodeId], bytes: u64| {
            if bytes == 0 {
                return;
            }
            let frac = 1.0 / (from_hosts.len() * to_hosts.len()) as f64;
            let mut expected = 0.0;
            for &a in from_hosts {
                for &b in to_hosts {
                    let t = topology.transfer_time(a, b, bytes).as_secs_f64();
                    expected += frac * t;
                    if a != b {
                        link_seconds[a.index() * np + b.index()] += frac * t;
                    }
                }
            }
            total_comm_latency += expected;
        };

        if let Some(src) = profile.source {
            add_boundary(
                &[src],
                mapping.placement(0).hosts(),
                profile.boundary_bytes[0],
            );
        }
        for b in 1..ns {
            if fused_edge(profile, mapping, b - 1, b) {
                continue;
            }
            add_boundary(
                mapping.placement(b - 1).hosts(),
                mapping.placement(b).hosts(),
                profile.boundary_bytes[b],
            );
        }
        if let Some(dst) = profile.sink {
            add_boundary(
                mapping.placement(ns - 1).hosts(),
                &[dst],
                profile.boundary_bytes[ns],
            );
        }
    } else if profile.graph.as_segments().is_some() {
        // General series-parallel walk: every graph edge contributes its
        // expected transfer time to the link budget, and the one-item
        // latency follows the *slowest parallel path* through each
        // block — branches overlap, so the block costs max(branch),
        // not sum(branch).
        graph_latency = walk_graph(profile, mapping, rates, topology, np, &mut link_seconds);
    } else {
        // Explicitly wired DAG: edge-wise link budget over every wire,
        // one-item latency along the critical (longest) path.
        graph_latency = walk_dag(profile, mapping, rates, topology, np, &mut link_seconds);
    }
    for (idx, &secs) in link_seconds.iter().enumerate() {
        if secs > max_link.0 {
            max_link = (secs, NodeId(idx / np), NodeId(idx % np));
        }
    }

    // --- Combine -------------------------------------------------------
    let (max_node_load, max_node) =
        node_load
            .iter()
            .enumerate()
            .fold((0.0f64, 0usize), |(best, arg), (i, &l)| {
                if l > best {
                    (l, i)
                } else {
                    (best, arg)
                }
            });

    if dead_node_used {
        return Prediction {
            throughput: 0.0,
            latency: f64::INFINITY,
            bottleneck: Bottleneck::Node(NodeId(max_node)),
            node_load,
        };
    }

    let (bottleneck, period) = if max_link.0 > max_node_load {
        (Bottleneck::Link(max_link.1, max_link.2), max_link.0)
    } else {
        (Bottleneck::Node(NodeId(max_node)), max_node_load)
    };

    // Latency: average service time at each stage + expected transfers.
    // Linear pipelines sum the chain (the historical formula, kept
    // byte-identical); graphs already folded max-over-branches into the
    // walk above.
    let latency = if profile.graph.is_linear() {
        let mut latency = total_comm_latency;
        for s in 0..ns {
            let placement = mapping.placement(s);
            let mean_service: f64 = placement
                .hosts()
                .iter()
                .map(|&h| profile.stage_work[s] / rates[h.index()])
                .sum::<f64>()
                / placement.width() as f64;
            latency += mean_service;
        }
        latency
    } else {
        graph_latency
    };

    let throughput = if period > 0.0 {
        1.0 / period
    } else {
        // Degenerate profile: zero work, zero communication.
        f64::INFINITY
    };

    Prediction {
        throughput,
        latency,
        bottleneck,
        node_load,
    }
}

/// One series-parallel pass over the stage graph: accumulates every
/// edge's expected transfer seconds into `link_seconds` (the per-link
/// busy budget) and returns the one-item traversal latency, where a
/// parallel block contributes the latency of its *slowest branch* (the
/// branches overlap) plus the merge stage's service time.
fn walk_graph(
    profile: &PipelineProfile,
    mapping: &Mapping,
    rates: &[f64],
    topology: &Topology,
    np: usize,
    link_seconds: &mut [f64],
) -> f64 {
    let ns = profile.stages();
    let service = |s: usize| -> f64 {
        let placement = mapping.placement(s);
        placement
            .hosts()
            .iter()
            .map(|&h| profile.stage_work[s] / rates[h.index()])
            .sum::<f64>()
            / placement.width() as f64
    };
    // Expected cost of the edge feeding `stage` from `prev` (the last
    // series stage upstream; `None` = the pipeline input, which only
    // costs a transfer when an explicit source node is declared).
    let in_edge = |prev: Option<usize>, stage: usize, link_seconds: &mut [f64]| -> f64 {
        let to_hosts = mapping.placement(stage).hosts();
        match prev {
            Some(p) if fused_edge(profile, mapping, p, stage) => 0.0,
            Some(p) => edge_cost(
                topology,
                mapping.placement(p).hosts(),
                to_hosts,
                profile.boundary_bytes[p + 1],
                np,
                link_seconds,
            ),
            None => match profile.source {
                Some(src) => edge_cost(
                    topology,
                    &[src],
                    to_hosts,
                    profile.boundary_bytes[0],
                    np,
                    link_seconds,
                ),
                None => 0.0,
            },
        }
    };

    let mut latency = 0.0f64;
    let mut prev: Option<usize> = None;
    for seg in profile.graph.segments() {
        match seg {
            Segment::Chain { start, end } => {
                for s in *start..*end {
                    latency += in_edge(prev, s, link_seconds) + service(s);
                    prev = Some(s);
                }
            }
            Segment::Parallel { branches, merge } => {
                let feed = prev;
                let mut block_latency = 0.0f64;
                for &(bs, be) in branches {
                    let mut branch_latency = 0.0f64;
                    let mut bprev = feed;
                    for s in bs..be {
                        branch_latency += in_edge(bprev, s, link_seconds) + service(s);
                        bprev = Some(s);
                    }
                    // Branch exit: the result ships to the merge hosts.
                    branch_latency += edge_cost(
                        topology,
                        mapping.placement(be - 1).hosts(),
                        mapping.placement(*merge).hosts(),
                        profile.boundary_bytes[be],
                        np,
                        link_seconds,
                    );
                    block_latency = block_latency.max(branch_latency);
                }
                latency += block_latency + service(*merge);
                prev = Some(*merge);
            }
        }
    }
    if let Some(dst) = profile.sink {
        latency += edge_cost(
            topology,
            mapping.placement(ns - 1).hosts(),
            &[dst],
            profile.boundary_bytes[ns],
            np,
            link_seconds,
        );
    }
    latency
}

/// One topological pass over an explicitly wired DAG: accumulates every
/// edge's expected transfer seconds into `link_seconds` and returns the
/// critical-path one-item latency — each stage finishes when its
/// *slowest* predecessor's output has arrived and its own service is
/// done, and the pipeline latency is the exit stage's finish time (plus
/// the sink hop when one is declared).
fn walk_dag(
    profile: &PipelineProfile,
    mapping: &Mapping,
    rates: &[f64],
    topology: &Topology,
    np: usize,
    link_seconds: &mut [f64],
) -> f64 {
    let ns = profile.stages();
    let service = |s: usize| -> f64 {
        let placement = mapping.placement(s);
        placement
            .hosts()
            .iter()
            .map(|&h| profile.stage_work[s] / rates[h.index()])
            .sum::<f64>()
            / placement.width() as f64
    };
    let mut done = vec![0.0f64; ns];
    for &s in profile.graph.topo_order() {
        let to_hosts = mapping.placement(s).hosts();
        let preds = profile.graph.preds(s);
        let arrive = if preds.is_empty() {
            match profile.source {
                Some(src) => edge_cost(
                    topology,
                    &[src],
                    to_hosts,
                    profile.boundary_bytes[0],
                    np,
                    link_seconds,
                ),
                None => 0.0,
            }
        } else {
            let mut latest = 0.0f64;
            for &p in preds {
                let hop = if fused_edge(profile, mapping, p, s) {
                    0.0
                } else {
                    edge_cost(
                        topology,
                        mapping.placement(p).hosts(),
                        to_hosts,
                        profile.boundary_bytes[p + 1],
                        np,
                        link_seconds,
                    )
                };
                latest = latest.max(done[p] + hop);
            }
            latest
        };
        done[s] = arrive + service(s);
    }
    let exit = profile.graph.exit();
    let mut latency = done[exit];
    if let Some(dst) = profile.sink {
        latency += edge_cost(
            topology,
            mapping.placement(exit).hosts(),
            &[dst],
            profile.boundary_bytes[exit + 1],
            np,
            link_seconds,
        );
    }
    latency
}

/// Expected transfer seconds for one graph edge (replica sets on both
/// ends, uniformly dealt), accumulated into the per-link busy budget.
fn edge_cost(
    topology: &Topology,
    from_hosts: &[NodeId],
    to_hosts: &[NodeId],
    bytes: u64,
    np: usize,
    link_seconds: &mut [f64],
) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    let frac = 1.0 / (from_hosts.len() * to_hosts.len()) as f64;
    let mut expected = 0.0;
    for &a in from_hosts {
        for &b in to_hosts {
            let t = topology.transfer_time(a, b, bytes).as_secs_f64();
            expected += frac * t;
            if a != b {
                link_seconds[a.index() * np + b.index()] += frac * t;
            }
        }
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Placement;
    use adapipe_gridsim::net::LinkSpec;
    use adapipe_gridsim::time::SimDuration;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    /// Unit-speed nodes, effectively free network.
    fn fast_net(np: usize) -> Topology {
        Topology::uniform(np, LinkSpec::new(SimDuration::from_nanos(1), 1e12))
    }

    #[test]
    fn balanced_one_to_one_throughput_is_inverse_stage_time() {
        let profile = PipelineProfile::uniform(vec![2.0, 2.0, 2.0], 0);
        let m = Mapping::from_assignment(&[n(0), n(1), n(2)]);
        let p = evaluate(&profile, &m, &[1.0, 1.0, 1.0], &fast_net(3));
        assert!((p.throughput - 0.5).abs() < 1e-9, "tput={}", p.throughput);
        assert!((p.latency - 6.0).abs() < 1e-6);
        assert_eq!(p.bottleneck, Bottleneck::Node(n(0)));
    }

    #[test]
    fn coalescing_sums_stage_work_on_shared_host() {
        let profile = PipelineProfile::uniform(vec![1.0, 1.0, 1.0], 0);
        let m = Mapping::from_assignment(&[n(0), n(0), n(1)]);
        let p = evaluate(&profile, &m, &[1.0, 1.0], &fast_net(2));
        // Node 0 does 2 units/item → bottleneck period 2 s.
        assert!((p.throughput - 0.5).abs() < 1e-9);
        assert_eq!(p.bottleneck, Bottleneck::Node(n(0)));
        assert!((p.node_load[0] - 2.0).abs() < 1e-12);
        assert!((p.node_load[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn faster_node_prefers_heavier_stage() {
        let profile = PipelineProfile::uniform(vec![4.0, 1.0], 0);
        let good = Mapping::from_assignment(&[n(0), n(1)]); // heavy on fast
        let bad = Mapping::from_assignment(&[n(1), n(0)]); // heavy on slow
        let rates = [4.0, 1.0];
        let pg = evaluate(&profile, &good, &rates, &fast_net(2));
        let pb = evaluate(&profile, &bad, &rates, &fast_net(2));
        assert!(pg.throughput > pb.throughput);
        assert!((pg.throughput - 1.0).abs() < 1e-9);
        assert!((pb.throughput - 0.25).abs() < 1e-9);
    }

    #[test]
    fn replication_halves_per_host_load() {
        let profile = PipelineProfile::uniform(vec![2.0], 0);
        let single = Mapping::from_assignment(&[n(0)]);
        let replicated = Mapping::new(vec![Placement::replicated(vec![n(0), n(1)])]);
        let rates = [1.0, 1.0];
        let ps = evaluate(&profile, &single, &rates, &fast_net(2));
        let pr = evaluate(&profile, &replicated, &rates, &fast_net(2));
        assert!((ps.throughput - 0.5).abs() < 1e-9);
        assert!((pr.throughput - 1.0).abs() < 1e-9, "tput={}", pr.throughput);
    }

    #[test]
    fn slow_link_becomes_bottleneck() {
        let profile = PipelineProfile::uniform(vec![0.1, 0.1], 1_000_000);
        let mut topo = fast_net(2);
        // 1 MB per item over a 1 MB/s link = 1 s per item on the link.
        topo.set_symmetric(n(0), n(1), LinkSpec::new(SimDuration::ZERO, 1e6));
        let m = Mapping::from_assignment(&[n(0), n(1)]);
        let p = evaluate(&profile, &m, &[1.0, 1.0], &topo);
        assert_eq!(p.bottleneck, Bottleneck::Link(n(0), n(1)));
        assert!((p.throughput - 1.0).abs() < 1e-6);
    }

    #[test]
    fn coalescing_beats_spreading_when_links_are_slow() {
        let profile = PipelineProfile::uniform(vec![0.1, 0.1], 1_000_000);
        let mut topo = fast_net(2);
        topo.set_symmetric(
            n(0),
            n(1),
            LinkSpec::new(SimDuration::from_millis(500), 1e6),
        );
        let spread = Mapping::from_assignment(&[n(0), n(1)]);
        let coalesced = Mapping::from_assignment(&[n(0), n(0)]);
        let rates = [1.0, 1.0];
        let ps = evaluate(&profile, &spread, &rates, &topo);
        let pc = evaluate(&profile, &coalesced, &rates, &topo);
        assert!(pc.throughput > ps.throughput, "coalescing should win");
    }

    #[test]
    fn dead_node_yields_zero_throughput() {
        let profile = PipelineProfile::uniform(vec![1.0, 1.0], 0);
        let m = Mapping::from_assignment(&[n(0), n(1)]);
        let p = evaluate(&profile, &m, &[1.0, 0.0], &fast_net(2));
        assert_eq!(p.throughput, 0.0);
        assert!(p.latency.is_infinite());
        assert_eq!(p.completion_time(10), f64::INFINITY);
    }

    #[test]
    fn completion_time_is_fill_plus_drain() {
        let profile = PipelineProfile::uniform(vec![1.0, 1.0], 0);
        let m = Mapping::from_assignment(&[n(0), n(1)]);
        let p = evaluate(&profile, &m, &[1.0, 1.0], &fast_net(2));
        // latency 2 s, throughput 1/s → 10 items take 2 + 9 = 11 s.
        assert!((p.completion_time(10) - 11.0).abs() < 1e-6);
        assert_eq!(p.completion_time(0), 0.0);
    }

    #[test]
    fn source_and_sink_edges_count_when_set() {
        let mut profile = PipelineProfile::uniform(vec![0.01], 1_000_000);
        let mut topo = fast_net(2);
        topo.set_symmetric(n(0), n(1), LinkSpec::new(SimDuration::ZERO, 1e6));
        let m = Mapping::from_assignment(&[n(1)]);
        // Without source/sink: no transfers at all → CPU-bound.
        let p0 = evaluate(&profile, &m, &[1.0, 1.0], &topo);
        assert!(p0.throughput > 10.0);
        // With source on n0: 1 MB in over the slow link dominates.
        profile.source = Some(n(0));
        let p1 = evaluate(&profile, &m, &[1.0, 1.0], &topo);
        assert_eq!(p1.bottleneck, Bottleneck::Link(n(0), n(1)));
        assert!((p1.throughput - 1.0).abs() < 1e-6);
    }

    #[test]
    fn availability_scales_rates() {
        let profile = PipelineProfile::uniform(vec![1.0], 0);
        let m = Mapping::from_assignment(&[n(0)]);
        let full = evaluate(&profile, &m, &[2.0], &fast_net(1));
        let half = evaluate(&profile, &m, &[1.0], &fast_net(1));
        assert!((full.throughput / half.throughput - 2.0).abs() < 1e-9);
    }

    #[test]
    fn branched_latency_is_max_over_paths_not_sum() {
        // (a ‖ b) → merge, with a = 4 units and b = 1 unit of work. The
        // branches overlap, so one item traverses in max(4, 1) + merge,
        // not 4 + 1 + merge.
        let mut profile = PipelineProfile::uniform(vec![4.0, 1.0, 0.0], 0);
        profile.graph = crate::graph::StageGraph::builder().split(&[1, 1]).build();
        profile.validate();
        let m = Mapping::from_assignment(&[n(0), n(1), n(2)]);
        let p = evaluate(&profile, &m, &[1.0, 1.0, 1.0], &fast_net(3));
        assert!((p.latency - 4.0).abs() < 1e-6, "latency={}", p.latency);
        // Throughput is still resource-bound: node 0 is busiest at 4 s.
        assert!((p.throughput - 0.25).abs() < 1e-9);
        assert_eq!(p.bottleneck, Bottleneck::Node(n(0)));

        // The equivalent serialized chain pays the sum.
        let chain = PipelineProfile::uniform(vec![4.0, 1.0, 0.0], 0);
        let pc = evaluate(&chain, &m, &[1.0, 1.0, 1.0], &fast_net(3));
        assert!((pc.latency - 5.0).abs() < 1e-6);
        assert_eq!(pc.throughput, p.throughput, "same resources, same rate");
    }

    #[test]
    fn branched_link_budget_follows_graph_edges_not_chain_boundaries() {
        // pre → (a ‖ b) → merge, 1 MB everywhere, all on distinct nodes.
        // The graph has NO a→b edge; the serialized chain does.
        let mut profile = PipelineProfile::uniform(vec![0.01, 0.01, 0.01, 0.01], 1_000_000);
        profile.graph = crate::graph::StageGraph::builder()
            .stages(1)
            .split(&[1, 1])
            .build();
        let mut topo = fast_net(4);
        // Only the a→b direction is slow: the chain must pay it, the
        // graph must not.
        topo.set(n(1), n(2), LinkSpec::new(SimDuration::ZERO, 1e6));
        let m = Mapping::from_assignment(&[n(0), n(1), n(2), n(3)]);
        let graph_pred = evaluate(&profile, &m, &[1.0; 4], &topo);
        let chain = PipelineProfile::uniform(vec![0.01, 0.01, 0.01, 0.01], 1_000_000);
        let chain_pred = evaluate(&chain, &m, &[1.0; 4], &topo);
        assert_eq!(chain_pred.bottleneck, Bottleneck::Link(n(1), n(2)));
        assert!(
            graph_pred.throughput > chain_pred.throughput * 10.0,
            "graph {} vs chain {}",
            graph_pred.throughput,
            chain_pred.throughput
        );
    }

    #[test]
    fn linear_graph_profile_evaluates_identically_to_the_implicit_chain() {
        // A profile whose graph is StageGraph::linear must be bit-equal
        // to the historical (implicit-chain) evaluation on every field.
        let implicit = PipelineProfile::uniform(vec![2.0, 1.0, 3.0], 50_000);
        let mut explicit = implicit.clone();
        explicit.graph = crate::graph::StageGraph::linear(3);
        let mut topo = fast_net(3);
        topo.set_symmetric(n(0), n(2), LinkSpec::new(SimDuration::from_millis(3), 1e8));
        let m = Mapping::new(vec![
            Placement::single(n(0)),
            Placement::replicated(vec![n(1), n(2)]),
            Placement::single(n(2)),
        ]);
        let rates = [1.0, 0.7, 1.3];
        let a = evaluate(&implicit, &m, &rates, &topo);
        let b = evaluate(&explicit, &m, &rates, &topo);
        assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        assert_eq!(a.latency.to_bits(), b.latency.to_bits());
        assert_eq!(a.bottleneck, b.bottleneck);
        assert_eq!(a.node_load, b.node_load);
    }

    #[test]
    fn fused_boundary_drops_intra_node_latency() {
        // Three stateless stages coalesced on one host: the engine fuses
        // both boundaries into direct calls, so the model charges no
        // transfer latency at all — latency is exactly the service sum.
        let mut fused = PipelineProfile::uniform(vec![1.0, 2.0, 1.0], 1_000_000);
        fused.fuses_colocated = true;
        let m = Mapping::from_assignment(&[n(0), n(0), n(0)]);
        let rates = [1.0, 1.0];
        let pf = evaluate(&fused, &m, &rates, &fast_net(2));
        assert!((pf.latency - 4.0).abs() < 1e-12, "latency={}", pf.latency);
        // A stateful middle stage can't be a fusion *target*: boundary
        // 0→1 pays the self-link again. (1→2 stays fused — its target
        // is stateless.)
        let mut stateful = fused.clone();
        stateful.stateless[1] = false;
        let ps = evaluate(&stateful, &m, &rates, &fast_net(2));
        assert!(ps.latency > pf.latency);
        // Throughput is untouched either way: same-host hops never
        // entered the link busy budget.
        assert_eq!(pf.throughput.to_bits(), ps.throughput.to_bits());
        assert_eq!(pf.node_load, ps.node_load);
    }

    #[test]
    fn fused_discount_requires_colocated_singletons() {
        let mut profile = PipelineProfile::uniform(vec![1.0, 1.0], 1_000_000);
        profile.fuses_colocated = true;
        let rates = [1.0, 1.0];
        // Spread over two hosts: the full inter-node charge stands.
        let spread = Mapping::from_assignment(&[n(0), n(1)]);
        let p_spread = evaluate(&profile, &spread, &rates, &fast_net(2));
        assert!(p_spread.latency > 2.0);
        // Co-located but the successor is replicated: items may cross
        // hosts, so the boundary keeps its expected transfer cost.
        let replicated = Mapping::new(vec![
            Placement::single(n(0)),
            Placement::replicated(vec![n(0), n(1)]),
        ]);
        let p_repl = evaluate(&profile, &replicated, &rates, &fast_net(2));
        let coalesced = Mapping::from_assignment(&[n(0), n(0)]);
        let p_co = evaluate(&profile, &coalesced, &rates, &fast_net(2));
        assert!(
            (p_co.latency - 2.0).abs() < 1e-12,
            "fused chain is pure service"
        );
        assert!(p_repl.latency > p_co.latency);
        // A non-fusing backend (the simulator) keeps the self-link
        // charge: the discount is opt-in via `fuses_colocated`.
        let mut sim_profile = profile.clone();
        sim_profile.fuses_colocated = false;
        let p_sim = evaluate(&sim_profile, &coalesced, &rates, &fast_net(2));
        assert!(p_sim.latency > p_co.latency);
    }

    #[test]
    fn fused_discount_applies_to_graph_chain_edges_only() {
        // pre → (a ‖ b) → merge → post, everything on one host. The
        // merge→post edge is a plain linear edge (fusable); the fan-out
        // and join edges are not, so they keep their self-link charges.
        let mut profile = PipelineProfile::uniform(vec![1.0; 5], 1_000_000);
        profile.fuses_colocated = true;
        profile.graph = crate::graph::StageGraph::builder()
            .stages(1)
            .split(&[1, 1])
            .stages(1)
            .build();
        profile.validate();
        let m = Mapping::from_assignment(&[n(0); 5]);
        let rates = [1.0];
        let pf = evaluate(&profile, &m, &rates, &fast_net(1));
        let mut stateful_post = profile.clone();
        stateful_post.stateless[4] = false;
        let ps = evaluate(&stateful_post, &m, &rates, &fast_net(1));
        // Un-fusing merge→post adds exactly one self-link hop.
        let self_hop = fast_net(1)
            .transfer_time(n(0), n(0), 1_000_000)
            .as_secs_f64();
        assert!(
            (ps.latency - pf.latency - self_hop).abs() < 1e-12,
            "delta={}",
            ps.latency - pf.latency
        );
        assert_eq!(pf.throughput.to_bits(), ps.throughput.to_bits());
    }

    #[test]
    #[should_panic(expected = "outside rate vector")]
    fn out_of_range_node_panics() {
        let profile = PipelineProfile::uniform(vec![1.0], 0);
        let m = Mapping::from_assignment(&[n(5)]);
        let _ = evaluate(&profile, &m, &[1.0], &fast_net(1));
    }

    #[test]
    #[should_panic(expected = "Ns+1")]
    fn inconsistent_profile_panics() {
        let mut profile = PipelineProfile::uniform(vec![1.0, 1.0], 0);
        profile.boundary_bytes.pop();
        let m = Mapping::from_assignment(&[n(0), n(0)]);
        let _ = evaluate(&profile, &m, &[1.0], &fast_net(1));
    }
}
