//! Cross-crate integration: the threaded backend runs the real domain
//! pipelines (imaging, signal) correctly, including under adaptation —
//! all through the unified `Pipeline` API.

use adapipe::prelude::*;
use adapipe::workloads::imaging::{self, Image};
use adapipe::workloads::signal::{self, Frame};

/// True if the host can actually run `k` threads in parallel. Wall-clock
/// speedup assertions are gated on this: on an undersized host the OS
/// time-shares the virtual nodes and parallel speedups are scheduler
/// noise, so only correctness (not timing) is asserted there.
fn multicore(k: usize) -> bool {
    std::thread::available_parallelism()
        .map(|p| p.get() >= k)
        .unwrap_or(false)
}

fn free_vnodes(k: usize) -> Vec<VNodeSpec> {
    (0..k).map(|i| VNodeSpec::free(format!("v{i}"))).collect()
}

#[test]
fn imaging_pipeline_produces_identical_results_on_any_mapping() {
    // Ground truth: run the kernels sequentially in-process.
    let side = 32;
    let n = 20u64;
    let expected: Vec<u64> = imaging::frames(side, n)
        .into_iter()
        .map(|f| {
            let q = imaging::quantise(&imaging::sobel(&imaging::blur(&f)), 8);
            q.pixels.iter().map(|&p| p as u64).sum::<u64>()
        })
        .collect();

    let run_on = |vnodes: Vec<VNodeSpec>, mapping: Mapping| {
        PipelineBuilder::from_pipeline(imaging_pipeline(side))
            .feed(move |i| Image::synthetic(side, side, i))
            .build()
            .expect("imaging pipeline builds")
            .run(
                Backend::Threads(vnodes),
                RunConfig {
                    items: n,
                    initial_mapping: Some(mapping),
                    ..RunConfig::default()
                },
            )
            .expect("threaded run")
    };

    // Spread mapping on 4 nodes.
    let spread = run_on(
        free_vnodes(4),
        Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]),
    );
    assert_eq!(spread.outputs, expected);

    // Fully coalesced mapping must give byte-identical answers.
    let coalesced = run_on(free_vnodes(1), Mapping::all_on(NodeId(0), 4));
    assert_eq!(coalesced.outputs, expected);
}

#[test]
fn signal_pipeline_outputs_are_stable_under_remapping() {
    let frame_len = 512;
    let n = 40u64;
    // Ground truth, sequential.
    let expected: Vec<f64> = {
        let (_, mut stages) = signal_pipeline(frame_len).into_parts();
        signal::frames(frame_len, n)
            .into_iter()
            .map(|f| {
                let mut item: adapipe::core::stage::BoxedItem =
                    adapipe::core::payload::Payload::new(f);
                for s in &mut stages {
                    item = s.process(item).expect("stages are type-aligned");
                }
                item.downcast::<f64>().unwrap()
            })
            .collect()
    };

    // Adaptive run with a mid-run load step.
    let vnodes = vec![
        VNodeSpec::free("v0"),
        VNodeSpec::free("v1").with_load(LoadModel::step(1.0, 0.05, SimTime::from_secs_f64(0.2))),
        VNodeSpec::free("v2"),
    ];
    let outcome = PipelineBuilder::from_pipeline(signal_pipeline(frame_len))
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(150),
        })
        .feed(move |i| Frame::synthetic(frame_len, i))
        .build()
        .expect("signal pipeline builds")
        .run(
            Backend::Threads(vnodes),
            RunConfig {
                items: n,
                initial_mapping: Some(Mapping::from_assignment(&[
                    NodeId(0),
                    NodeId(1),
                    NodeId(2),
                    NodeId(0),
                ])),
                ..RunConfig::default()
            },
        )
        .expect("threaded run");
    assert_eq!(outcome.report.completed, n);
    // Stateless numeric kernels: results must be bit-identical regardless
    // of which node computed them or whether a migration happened.
    assert_eq!(outcome.outputs, expected);
}

#[test]
fn synthetic_twin_matches_sim_shape() {
    // The same middle-heavy spec, run (a) in simulation and (b) on the
    // threaded backend with spin items — through the one unified
    // program shape; the *shape* (which mapping class wins) must agree:
    // replication of the heavy stage helps both.
    let mk_spec = || synthetic_spec(3, CostShape::MiddleHeavy, 1.0, 0, 0.0, 5);

    // (a) simulation on 4 free nodes.
    let grid = {
        let nodes = (0..4)
            .map(|i| Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), LoadModel::free()))
            .collect();
        GridSpec::new(nodes, Topology::uniform(4, LinkSpec::lan()))
    };
    let narrow = Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2)]);
    let wide = Mapping::new(vec![
        Placement::single(NodeId(0)),
        Placement::replicated(vec![NodeId(1), NodeId(3)]),
        Placement::single(NodeId(2)),
    ]);
    let sim_with = |mapping: Mapping| {
        PipelineBuilder::from_spec(mk_spec())
            .build()
            .expect("sim twin builds")
            .run(
                Backend::Sim(&grid),
                RunConfig {
                    items: 200,
                    initial_mapping: Some(mapping),
                    ..RunConfig::default()
                },
            )
            .expect("sim run")
            .report
    };
    let sim_narrow = sim_with(narrow.clone());
    let sim_wide = sim_with(wide.clone());
    assert!(
        sim_wide.makespan.as_secs_f64() < sim_narrow.makespan.as_secs_f64() * 0.75,
        "sim: replication must clearly win ({} vs {})",
        sim_wide.makespan,
        sim_narrow.makespan
    );

    // (b) threaded backend, 2 ms work units.
    let items = 120u64;
    let eng_with = |mapping: Mapping| {
        let spec = mk_spec();
        let feed_items = synth_items(&spec, items, 0.002);
        PipelineBuilder::from_pipeline(synth_pipeline(&spec))
            .feed(move |i| feed_items[i as usize].clone())
            .build()
            .expect("threaded twin builds")
            .run(
                Backend::Threads(free_vnodes(4)),
                RunConfig {
                    items,
                    initial_mapping: Some(mapping),
                    ..RunConfig::default()
                },
            )
            .expect("threaded run")
    };
    let eng_narrow = eng_with(narrow);
    let eng_wide = eng_with(wide);
    assert_eq!(eng_narrow.report.completed, items);
    assert_eq!(eng_wide.report.completed, items);
    if multicore(5) {
        assert!(
            eng_wide.report.makespan.as_secs_f64() < eng_narrow.report.makespan.as_secs_f64() * 0.9,
            "engine: replication must win ({} vs {})",
            eng_wide.report.makespan,
            eng_narrow.report.makespan
        );
    } else {
        eprintln!(
            "host has <5 cores: skipping wall-clock speedup assertion \
             (narrow {}, wide {})",
            eng_narrow.report.makespan, eng_wide.report.makespan
        );
    }
}
