//! Figure 3 — speedup vs processor count, with and without stage
//! replication.
//!
//! An 8-stage pipeline on 1..32 homogeneous LAN nodes. With balanced
//! stages the speedup plateaus at Ns = 8 — a pipeline exposes at most
//! one processor of parallelism per stage — unless stateless stages may
//! be *replicated*, which lifts the plateau. With a middle-heavy stage
//! the unreplicated plateau is far lower (the bottleneck stage gates
//! everything), making replication's contribution starker.

use adapipe_bench::{banner, Table};
use adapipe_core::prelude::*;
use adapipe_core::simengine::run as sim_run;
use adapipe_gridsim::prelude::*;
use adapipe_workloads::prelude::*;

fn uniform_grid(np: usize) -> GridSpec {
    let nodes = (0..np)
        .map(|i| Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), LoadModel::free()))
        .collect();
    GridSpec::new(nodes, Topology::uniform(np, LinkSpec::lan()))
}

fn main() {
    banner(
        "F3",
        "speedup vs processor count (8 stages; replication on/off)",
        "balanced: linear to ~8 then flat without replication, keeps \
         climbing with it; middle-heavy: plateaus early without \
         replication (~2.75), replication recovers most of the gap",
    );

    let items = 300u64;
    let shapes = [
        (CostShape::Balanced, "balanced"),
        (CostShape::MiddleHeavy, "mid-heavy"),
    ];

    let mut table = Table::new(&[
        "Np",
        "balanced/rep-off",
        "balanced/rep-on",
        "mid-heavy/rep-off",
        "mid-heavy/rep-on",
    ]);

    // Baselines: one node, everything coalesced.
    let mut base = [0.0f64; 2];
    for (i, (shape, _)) in shapes.iter().enumerate() {
        let spec = synthetic_spec(8, *shape, 1.0, 10_000, 0.0, 3);
        let report = sim_run(
            &uniform_grid(1),
            &spec,
            &SimConfig {
                items,
                ..SimConfig::default()
            },
        );
        base[i] = report.makespan.as_secs_f64();
    }

    for np in [1usize, 2, 4, 8, 16, 32] {
        let mut cells = vec![np.to_string()];
        for (i, (shape, _)) in shapes.iter().enumerate() {
            let spec = synthetic_spec(8, *shape, 1.0, 10_000, 0.0, 3);
            for max_width in [1usize, 4] {
                let mut cfg = SimConfig {
                    items,
                    ..SimConfig::default()
                };
                cfg.controller.planner.max_width = max_width;
                let report = sim_run(&uniform_grid(np), &spec, &cfg);
                let speedup = base[i] / report.makespan.as_secs_f64();
                cells.push(format!("{speedup:.2}"));
            }
        }
        // Reorder: balanced(off,on), mid(off,on) — cells already in that order.
        table.row(cells);
    }
    table.print();
    println!("speedup = makespan(1 node) / makespan(Np nodes), same workload");
}
