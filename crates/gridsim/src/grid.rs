//! Assembled grids and the synthetic testbeds used by the evaluation.
//!
//! A [`GridSpec`] couples a set of [`Node`]s with a [`Topology`]. The
//! `testbed_*` constructors build the three reference grids of experiment
//! T1; they are deterministic functions of a seed so every experiment can
//! reconstruct the exact same environment.

use crate::load::LoadModel;
use crate::net::{LinkSpec, Topology};
use crate::node::{Node, NodeId, NodeSpec};
use crate::rng::child_seed;
use crate::time::{SimDuration, SimTime};

/// A complete grid: nodes plus interconnect.
#[derive(Clone, Debug)]
pub struct GridSpec {
    nodes: Vec<Node>,
    topology: Topology,
}

impl GridSpec {
    /// Builds a grid from nodes and a matching topology.
    ///
    /// # Panics
    /// Panics if the topology size differs from the node count.
    pub fn new(nodes: Vec<Node>, topology: Topology) -> Self {
        assert_eq!(
            nodes.len(),
            topology.len(),
            "topology covers {} nodes but grid has {}",
            topology.len(),
            nodes.len()
        );
        assert!(!nodes.is_empty(), "grid needs at least one node");
        GridSpec { nodes, topology }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the grid has no nodes (not constructible via `new`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable access to a node (used by fault injection).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// The interconnect.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the interconnect.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Replaces the load model of `id`, returning the previous one.
    pub fn set_load(&mut self, id: NodeId, load: LoadModel) -> LoadModel {
        std::mem::replace(&mut self.nodes[id.0].load, load)
    }

    /// Effective rate of every node at `t` (speed × availability).
    pub fn rates_at(&self, t: SimTime) -> Vec<f64> {
        self.nodes.iter().map(|n| n.rate_at(t)).collect()
    }

    /// Sum of nominal speeds — an upper bound on aggregate compute.
    pub fn total_speed(&self) -> f64 {
        self.nodes.iter().map(|n| n.spec.speed).sum()
    }
}

/// `small3`: three identical free nodes on a uniform LAN.
///
/// The minimal testbed used for model-validation sweeps (experiment T2),
/// mirroring the 3-stage/3-processor setting classic pipeline mapping
/// studies use.
pub fn testbed_small3() -> GridSpec {
    let nodes = (0..3)
        .map(|i| {
            Node::new(
                NodeSpec::new(format!("small-{i}"), 1.0, 1),
                LoadModel::free(),
            )
        })
        .collect();
    GridSpec::new(nodes, Topology::uniform(3, LinkSpec::lan()))
}

/// `hetero8`: eight heterogeneous nodes (speeds 0.5×–3×) on a clustered
/// network (two LAN clusters of four, WAN between clusters), with
/// seed-derived random-walk background load on half of the nodes.
///
/// This is the workhorse testbed for the adaptation experiments (F1, F2,
/// F4, F5).
pub fn testbed_hetero8(seed: u64) -> GridSpec {
    let speeds = [3.0, 2.0, 1.5, 1.0, 1.0, 0.75, 0.5, 0.5];
    let nodes = speeds
        .iter()
        .enumerate()
        .map(|(i, &speed)| {
            let load = if i % 2 == 1 {
                LoadModel::random_walk(
                    child_seed(seed, i as u64),
                    0.9,
                    0.05,
                    SimDuration::from_secs(2),
                    0.3,
                    1.0,
                    SimDuration::from_secs(600),
                )
            } else {
                LoadModel::free()
            };
            Node::new(NodeSpec::new(format!("hetero-{i}"), speed, 1), load)
        })
        .collect();
    GridSpec::new(
        nodes,
        Topology::clustered(8, 4, LinkSpec::lan(), LinkSpec::wan()),
    )
}

/// `grid32`: thirty-two nodes in four clusters of eight; speeds drawn from
/// {0.5, 1, 2, 4} per cluster; Markov on/off background load on a third of
/// the nodes. Used for the scalability experiment (F3) and decision-cost
/// table (T3).
pub fn testbed_grid32(seed: u64) -> GridSpec {
    let cluster_speed = [4.0, 2.0, 1.0, 0.5];
    let nodes = (0..32)
        .map(|i| {
            let cluster = i / 8;
            let speed = cluster_speed[cluster];
            let load = if i % 3 == 0 {
                LoadModel::markov_on_off(
                    child_seed(seed, i as u64),
                    SimDuration::from_secs(60),
                    SimDuration::from_secs(20),
                    0.25,
                    SimDuration::from_secs(1200),
                )
            } else {
                LoadModel::free()
            };
            Node::new(
                NodeSpec::new(format!("grid-{cluster}-{}", i % 8), speed, 1),
                load,
            )
        })
        .collect();
    GridSpec::new(
        nodes,
        Topology::clustered(32, 8, LinkSpec::lan(), LinkSpec::wan()),
    )
}

/// A named testbed, so experiment configs can refer to grids by string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Testbed {
    /// See [`testbed_small3`].
    Small3,
    /// See [`testbed_hetero8`].
    Hetero8,
    /// See [`testbed_grid32`].
    Grid32,
}

impl Testbed {
    /// Instantiates the testbed with the given seed.
    pub fn build(self, seed: u64) -> GridSpec {
        match self {
            Testbed::Small3 => testbed_small3(),
            Testbed::Hetero8 => testbed_hetero8(seed),
            Testbed::Grid32 => testbed_grid32(seed),
        }
    }

    /// The testbed's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Testbed::Small3 => "small3",
            Testbed::Hetero8 => "hetero8",
            Testbed::Grid32 => "grid32",
        }
    }

    /// All defined testbeds.
    pub fn all() -> [Testbed; 3] {
        [Testbed::Small3, Testbed::Hetero8, Testbed::Grid32]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small3_is_homogeneous_and_free() {
        let g = testbed_small3();
        assert_eq!(g.len(), 3);
        for id in g.node_ids() {
            assert_eq!(g.node(id).spec.speed, 1.0);
            assert_eq!(g.node(id).load.availability(SimTime::ZERO), 1.0);
        }
    }

    #[test]
    fn hetero8_is_deterministic_per_seed() {
        let a = testbed_hetero8(5);
        let b = testbed_hetero8(5);
        let c = testbed_hetero8(6);
        let t = SimTime::from_secs_f64(123.0);
        let ra: Vec<f64> = a.rates_at(t);
        let rb: Vec<f64> = b.rates_at(t);
        let rc: Vec<f64> = c.rates_at(t);
        assert_eq!(ra, rb, "same seed, same rates");
        assert_ne!(ra, rc, "different seed changes loaded-node rates");
    }

    #[test]
    fn hetero8_spans_6x_speed_range() {
        let g = testbed_hetero8(1);
        let speeds: Vec<f64> = g.node_ids().map(|id| g.node(id).spec.speed).collect();
        let max = speeds.iter().cloned().fold(f64::MIN, f64::max);
        let min = speeds.iter().cloned().fold(f64::MAX, f64::min);
        assert_eq!(max / min, 6.0);
    }

    #[test]
    fn grid32_has_four_speed_classes() {
        let g = testbed_grid32(1);
        assert_eq!(g.len(), 32);
        let mut speeds: Vec<f64> = g.node_ids().map(|id| g.node(id).spec.speed).collect();
        speeds.dedup();
        assert_eq!(speeds, vec![4.0, 2.0, 1.0, 0.5]);
    }

    #[test]
    fn set_load_swaps_model() {
        let mut g = testbed_small3();
        let old = g.set_load(NodeId(1), LoadModel::constant(0.5));
        assert_eq!(old.availability(SimTime::ZERO), 1.0);
        assert_eq!(g.node(NodeId(1)).load.availability(SimTime::ZERO), 0.5);
    }

    #[test]
    fn testbed_names_round_trip() {
        for tb in Testbed::all() {
            assert!(!tb.name().is_empty());
            assert!(tb.build(3).len() >= 3);
        }
    }

    #[test]
    #[should_panic(expected = "topology covers")]
    fn mismatched_topology_panics() {
        let nodes = vec![Node::new(NodeSpec::new("a", 1.0, 1), LoadModel::free())];
        let _ = GridSpec::new(nodes, Topology::uniform(2, LinkSpec::lan()));
    }
}
