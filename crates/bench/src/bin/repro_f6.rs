//! Figure 6 — the one-box threaded engine under wall-clock measurement.
//!
//! The F1 story re-run on real threads: a 3-stage spin-work pipeline on
//! 3 virtual nodes; the node hosting stage 1 collapses to 5 % shortly
//! into the run. Compares static / adaptive / oracle wall-clock
//! makespans and prints the adaptive throughput timeline. The scenario
//! is written once against the unified `adapipe::api` surface and
//! parameterised by policy.
//!
//! The slowdown mechanism (measured compute + compensating sleep) works
//! on any host, including single-core CI boxes; see the engine docs for
//! why *speedup*-type claims live in the simulator instead.

use adapipe::prelude::*;
use adapipe_bench::{banner, Table};

fn vnodes() -> Vec<VNodeSpec> {
    vec![
        VNodeSpec::free("v0"),
        VNodeSpec::free("v1").with_load(LoadModel::step(1.0, 0.05, SimTime::from_secs_f64(0.4))),
        VNodeSpec::free("v2"),
    ]
}

fn main() {
    banner(
        "F6",
        "threaded engine, one box: load step on a stage host (wall clock)",
        "static pays the 20x slowdown for the rest of the run; adaptive \
         re-maps within ~1-2 control periods and lands near oracle",
    );
    println!(
        "host: {} hardware threads, {:.0} Mspin/s\n",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        calibrate_host() / 1e6
    );

    let items_n = 400u64;
    let unit = 0.003; // 3 ms of spin per stage per item
    let interval = SimDuration::from_millis(250);
    let mapping = Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2)]);

    let mut table = Table::new(&["policy", "makespan(s)", "tput(items/s)", "remaps"]);
    let mut adaptive_timeline = None;
    for policy in [
        Policy::Static,
        Policy::Periodic { interval },
        Policy::Oracle { interval },
    ] {
        let spec = synthetic_spec(3, CostShape::Balanced, 1.0, 0, 0.0, 1);
        let items = synth_items(&spec, items_n, unit);
        let outcome = PipelineBuilder::from_pipeline(synth_pipeline(&spec))
            .policy(policy)
            .feed(move |i| items[i as usize].clone())
            .build()
            .expect("f6 pipeline builds")
            .run(
                Backend::Threads(vnodes()),
                RunConfig {
                    items: items_n,
                    initial_mapping: Some(mapping.clone()),
                    ..RunConfig::default()
                },
            )
            .expect("threaded run");
        let report = &outcome.report;
        table.row(vec![
            policy.name().to_string(),
            format!("{:.2}", report.makespan.as_secs_f64()),
            format!("{:.1}", report.mean_throughput()),
            report.adaptation_count().to_string(),
        ]);
        if matches!(policy, Policy::Periodic { .. }) {
            adaptive_timeline = Some(report.timeline.series());
        }
    }
    table.print();

    if let Some(series) = adaptive_timeline {
        println!("adaptive throughput timeline (500 ms buckets):");
        for (t, rate) in series {
            let bar: String = std::iter::repeat_n('#', (rate / 10.0).round() as usize).collect();
            println!("csv_timeline,{:.2},{:.1}", t.as_secs_f64(), rate);
            println!("  t={:>5.2}s {:>6.1} it/s |{bar}", t.as_secs_f64(), rate);
        }
    }
}
