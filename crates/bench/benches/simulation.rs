//! Simulator throughput: simulated items per wall second. Bounds how
//! large the parameter sweeps of the repro binaries can afford to be.
//!
//! `cargo bench -p adapipe-bench --bench simulation`

use adapipe_core::policy::Policy;
use adapipe_core::simengine::{run, SimConfig};
use adapipe_core::spec::PipelineSpec;
use adapipe_gridsim::grid::{testbed_hetero8, testbed_small3};
use adapipe_gridsim::time::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("small3_static_1k_items", |b| {
        let grid = testbed_small3();
        let spec = PipelineSpec::balanced(3, 1.0, 10_000);
        let cfg = SimConfig {
            items: 1_000,
            ..SimConfig::default()
        };
        b.iter(|| run(&grid, &spec, &cfg));
    });

    group.bench_function("hetero8_adaptive_1k_items", |b| {
        let grid = testbed_hetero8(3);
        let spec = PipelineSpec::balanced(4, 1.0, 10_000);
        let cfg = SimConfig {
            items: 1_000,
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            ..SimConfig::default()
        };
        b.iter(|| run(&grid, &spec, &cfg));
    });

    group.bench_function("hetero8_contention_1k_items", |b| {
        let grid = testbed_hetero8(3);
        let spec = PipelineSpec::balanced(4, 1.0, 100_000);
        let cfg = SimConfig {
            items: 1_000,
            link_contention: true,
            ..SimConfig::default()
        };
        b.iter(|| run(&grid, &spec, &cfg));
    });

    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
