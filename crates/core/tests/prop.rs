//! Property-based tests for the simulated engine: determinism,
//! conservation, and model agreement.

use adapipe_core::prelude::*;
use adapipe_gridsim::prelude::*;
use adapipe_mapper::prelude::*;
use proptest::prelude::*;

fn uniform_grid(np: usize, speeds_seed: u64) -> GridSpec {
    let nodes = (0..np)
        .map(|i| {
            let speed = 0.5 + 3.5 * adapipe_gridsim::rng::unit_at(speeds_seed, i as u64);
            Node::new(NodeSpec::new(format!("n{i}"), speed, 1), LoadModel::free())
        })
        .collect();
    GridSpec::new(nodes, Topology::uniform(np, LinkSpec::lan()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two identical runs produce identical reports, even with adaptive
    /// policies and noisy observation.
    #[test]
    fn simulation_is_deterministic(
        seed in any::<u64>(),
        items in 10u64..200,
        ns in 1usize..5,
        noise in 0.0f64..0.2,
    ) {
        let grid = testbed_hetero8(seed);
        let spec = PipelineSpec::balanced(ns, 1.0, 5_000);
        let cfg = SimConfig {
            items,
            policy: Policy::Periodic { interval: SimDuration::from_secs(5) },
            observation_noise: noise,
            noise_seed: seed,
            ..SimConfig::default()
        };
        let a = sim_run(&grid, &spec, &cfg);
        let b = sim_run(&grid, &spec, &cfg);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.adaptations.len(), b.adaptations.len());
        prop_assert_eq!(a.mean_latency, b.mean_latency);
    }

    /// Conservation: on a live grid every item completes exactly once.
    #[test]
    fn all_items_complete_exactly_once(
        speeds_seed in any::<u64>(),
        items in 1u64..300,
        ns in 1usize..6,
        np in 1usize..6,
    ) {
        let grid = uniform_grid(np, speeds_seed);
        let spec = PipelineSpec::balanced(ns, 0.5, 1_000);
        let report = sim_run(&grid, &spec, &SimConfig { items, ..SimConfig::default() });
        prop_assert_eq!(report.completed, items);
        prop_assert!(!report.truncated);
        prop_assert_eq!(report.timeline.total(), items);
    }

    /// Makespan is monotone in stream length.
    #[test]
    fn makespan_grows_with_stream_length(
        speeds_seed in any::<u64>(),
        n1 in 1u64..150,
        extra in 1u64..150,
    ) {
        let grid = uniform_grid(3, speeds_seed);
        let spec = PipelineSpec::balanced(3, 1.0, 1_000);
        let run = |items| {
            sim_run(&grid, &spec, &SimConfig { items, ..SimConfig::default() })
        };
        let a = run(n1);
        let b = run(n1 + extra);
        prop_assert!(b.makespan >= a.makespan);
    }

    /// On a static load-free grid the analytic model predicts simulated
    /// makespan within 10 % for any mapping (uniform work, modest data).
    #[test]
    fn model_agrees_with_simulation(
        speeds_seed in any::<u64>(),
        ns in 1usize..5,
        np in 1usize..4,
        assignment_seed in any::<u64>(),
    ) {
        let grid = uniform_grid(np, speeds_seed);
        let spec = PipelineSpec::balanced(ns, 1.0, 10_000);
        let assignment: Vec<NodeId> = (0..ns)
            .map(|s| NodeId((assignment_seed as usize).wrapping_add(s * 7) % np))
            .collect();
        let mapping = Mapping::from_assignment(&assignment);
        let profile = spec.profile();
        let rates = grid.rates_at(SimTime::ZERO);
        let pred = evaluate(&profile, &mapping, &rates, grid.topology());

        let items = 300u64;
        let report = sim_run(
            &grid,
            &spec,
            &SimConfig {
                items,
                initial_mapping: Some(mapping),
                ..SimConfig::default()
            },
        );
        let predicted = pred.completion_time(items);
        let simulated = report.makespan.as_secs_f64();
        let err = (predicted - simulated).abs() / simulated.max(1e-9);
        prop_assert!(
            err < 0.10,
            "model {predicted:.2}s vs sim {simulated:.2}s ({:.1}% off)",
            err * 100.0
        );
    }

    /// The adaptive policy never loses badly to static on any seeded
    /// hetero8 grid: hysteresis bounds the cost of adaptation.
    #[test]
    fn adaptation_never_loses_badly(
        seed in any::<u64>(),
    ) {
        let spec = PipelineSpec::balanced(4, 1.0, 5_000);
        let items = 200u64;
        let grid = testbed_hetero8(seed);
        let static_r = sim_run(&grid, &spec, &SimConfig { items, ..SimConfig::default() });
        let adaptive_r = sim_run(
            &grid,
            &spec,
            &SimConfig {
                items,
                policy: Policy::Periodic { interval: SimDuration::from_secs(5) },
                ..SimConfig::default()
            },
        );
        prop_assert_eq!(adaptive_r.completed, items);
        prop_assert!(
            adaptive_r.makespan.as_secs_f64() <= static_r.makespan.as_secs_f64() * 1.25,
            "adaptive {} vs static {} (seed {seed})",
            adaptive_r.makespan,
            static_r.makespan
        );
    }

    /// Work models: drawn work is always within the declared spread.
    #[test]
    fn uniform_work_respects_bounds(
        mean in 0.1f64..10.0,
        spread in 0.0f64..0.9,
        seed in any::<u64>(),
        item in any::<u64>(),
    ) {
        let w = UniformWork::new(mean, spread, seed);
        let v = w.draw(item);
        prop_assert!(v >= mean * (1.0 - spread) - 1e-12);
        prop_assert!(v <= mean * (1.0 + spread) + 1e-12);
    }
}
