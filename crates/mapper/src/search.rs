//! Mapping optimisers: exhaustive, contiguous DP, and local search.
//!
//! The adaptation controller calls [`plan`] with the current resource
//! forecast; `plan` picks a strategy by instance size:
//!
//! * small instances (`np^ns` under a cap) — exhaustive enumeration,
//!   provably optimal within the unreplicated space;
//! * larger instances — a contiguous dynamic program seeds a steepest-
//!   descent local search with random restarts.
//!
//! A final greedy replication pass ([`crate::replicate`]) widens
//! stateless bottleneck stages either way.

use crate::enumerate::{assignment_count, neighbours, Assignments};
use crate::mapping::{ContiguousMapping, Mapping};
use crate::model::{evaluate, PipelineProfile, Prediction};
use crate::replicate;
use adapipe_gridsim::net::Topology;
use adapipe_gridsim::node::NodeId;
use adapipe_gridsim::rng::Rng64;

/// Tunables for the planner.
#[derive(Clone, Debug)]
pub struct PlannerConfig {
    /// Use exhaustive search when `np^ns` is at most this.
    pub exhaustive_cap: u64,
    /// Random restarts for local search on large instances.
    pub restarts: usize,
    /// Maximum steepest-descent steps per restart.
    pub max_steps: usize,
    /// Maximum replicas per stage (1 disables replication).
    pub max_width: usize,
    /// Seed for the restart RNG.
    pub seed: u64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            exhaustive_cap: 50_000,
            restarts: 4,
            max_steps: 200,
            max_width: 4,
            seed: 0xADA9,
        }
    }
}

/// A mapping with its predicted performance.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The chosen mapping.
    pub mapping: Mapping,
    /// Model prediction for it.
    pub prediction: Prediction,
    /// Which strategy produced it (for the overhead table).
    pub strategy: Strategy,
}

/// Which optimiser produced a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Full enumeration of unreplicated assignments.
    Exhaustive,
    /// Contiguous DP seed + steepest-descent local search.
    LocalSearch,
}

/// `true` iff `a` is a strictly better prediction than `b`: higher
/// throughput; then lower latency; then better load balance (lower sum
/// of squared node loads). The final tie-break matters: among the many
/// equal-throughput optima of a symmetric instance, the most *spread*
/// mapping is the best launch point for the greedy replication pass,
/// which only takes single steps.
fn better(a: &Prediction, b: &Prediction) -> bool {
    if a.throughput != b.throughput {
        return a.throughput > b.throughput;
    }
    if a.latency != b.latency {
        return a.latency < b.latency;
    }
    let sumsq = |p: &Prediction| p.node_load.iter().map(|l| l * l).sum::<f64>();
    sumsq(a) < sumsq(b)
}

/// Exhaustively evaluates every unreplicated assignment.
///
/// # Panics
/// Panics if `np^ns` exceeds `cap` (caller must gate on
/// [`assignment_count`]).
pub fn exhaustive_best(
    profile: &PipelineProfile,
    rates: &[f64],
    topology: &Topology,
    cap: u64,
) -> Plan {
    let frontier = exhaustive_frontier(profile, rates, topology, cap, 1);
    let (mapping, prediction) = frontier.into_iter().next().expect("non-empty frontier");
    Plan {
        mapping,
        prediction,
        strategy: Strategy::Exhaustive,
    }
}

/// Exhaustively evaluates every unreplicated assignment and returns up
/// to `k` mappings tied (within float epsilon) at the best throughput,
/// best-ranked first.
///
/// Symmetric instances have many equal-throughput optima that differ in
/// how evenly they load the nodes; the greedy replication pass is
/// single-step and can escape from some of them but not others, so the
/// planner improves the whole frontier.
///
/// # Panics
/// Panics if `np^ns` exceeds `cap` or `k` is zero.
pub fn exhaustive_frontier(
    profile: &PipelineProfile,
    rates: &[f64],
    topology: &Topology,
    cap: u64,
    k: usize,
) -> Vec<(Mapping, Prediction)> {
    assert!(k > 0, "frontier size must be positive");
    let ns = profile.stages();
    let np = rates.len();
    assignment_count(ns, np)
        .filter(|&c| c <= cap)
        .expect("instance too large for exhaustive search");
    let mut frontier: Vec<(Mapping, Prediction)> = Vec::with_capacity(k + 1);
    for mapping in Assignments::new(ns, np) {
        let pred = evaluate(profile, &mapping, rates, topology);
        match frontier.first() {
            None => frontier.push((mapping, pred)),
            Some((_, best)) => {
                let tied = (pred.throughput - best.throughput).abs() <= 1e-12;
                if better(&pred, best) && !tied {
                    frontier.clear();
                    frontier.push((mapping, pred));
                } else if tied {
                    // Insert in `better` order, truncating to k entries.
                    let pos = frontier
                        .iter()
                        .position(|(_, p)| better(&pred, p))
                        .unwrap_or(frontier.len());
                    if pos < k {
                        frontier.insert(pos, (mapping, pred));
                        frontier.truncate(k);
                    }
                }
            }
        }
    }
    frontier
}

/// Contiguous DP: splits the stage chain into `hosts.len()` consecutive
/// groups, group `g` on `hosts[g]`, minimising the bottleneck of
/// per-group compute time plus ingress transfer time.
///
/// Runs in `O(ns² · k)`. This ignores link sharing between groups (the
/// full model re-scores the result), but captures the dominant
/// coalesce-vs-spread trade-off. Groups are contiguous in *stage-id
/// order* — exact for chains, a seed approximation for wider graphs;
/// `dp_seed` permutes explicit DAGs into topological order first, and
/// every candidate is re-scored by the graph-aware [`evaluate`] before
/// anything is adopted.
pub fn contiguous_dp(
    profile: &PipelineProfile,
    rates: &[f64],
    topology: &Topology,
    hosts: &[NodeId],
) -> Option<ContiguousMapping> {
    let ns = profile.stages();
    let ends = contiguous_dp_ends(
        &profile.stage_work,
        &profile.boundary_bytes[..ns],
        rates,
        topology,
        hosts,
    )?;
    Some(ContiguousMapping::new(ends, hosts.to_vec()))
}

/// DP seed used by the planner: runs the contiguous split over the
/// graph's *topological order* and scatters the group hosts back to
/// stage ids. On chain and series-parallel (builder-sugar) graphs the
/// topological order is the identity permutation, so this reproduces
/// the historical contiguous seed exactly; on explicit DAGs it keeps
/// each group a causally-consecutive slice of the pipeline even when
/// stage ids were declared out of dependency order.
fn dp_seed(
    profile: &PipelineProfile,
    rates: &[f64],
    topology: &Topology,
    hosts: &[NodeId],
) -> Option<Mapping> {
    let topo = profile.graph.topo_order();
    let work: Vec<f64> = topo.iter().map(|&s| profile.stage_work[s]).collect();
    let ingress: Vec<u64> = topo.iter().map(|&s| profile.boundary_bytes[s]).collect();
    let ends = contiguous_dp_ends(&work, &ingress, rates, topology, hosts)?;
    let mut assignment = vec![NodeId(0); profile.stages()];
    let mut start = 0usize;
    for (g, &end) in ends.iter().enumerate() {
        for &stage in &topo[start..end] {
            assignment[stage] = hosts[g];
        }
        start = end;
    }
    Some(Mapping::from_assignment(&assignment))
}

/// Core of the contiguous DP over an abstract stage sequence:
/// `work[i]` is the compute weight of the i-th stage in the sequence
/// and `ingress[i]` the bytes flowing into it. Returns the group split
/// points (`ends[g]` = one past the last sequence position of group
/// `g`), or `None` when no finite-cost split exists.
fn contiguous_dp_ends(
    work: &[f64],
    ingress: &[u64],
    rates: &[f64],
    topology: &Topology,
    hosts: &[NodeId],
) -> Option<Vec<usize>> {
    let ns = work.len();
    let k = hosts.len();
    if k == 0 || k > ns {
        return None;
    }
    // Prefix sums of stage work for O(1) group-work queries.
    let mut prefix = vec![0.0f64; ns + 1];
    for s in 0..ns {
        prefix[s + 1] = prefix[s] + work[s];
    }
    let group_cost = |start: usize, end: usize, g: usize| -> f64 {
        let rate = rates[hosts[g].index()];
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        let compute = (prefix[end] - prefix[start]) / rate;
        let transfer = if g == 0 {
            0.0
        } else {
            topology
                .transfer_time(hosts[g - 1], hosts[g], ingress[start])
                .as_secs_f64()
        };
        compute + transfer
    };

    // dp[g][s] = minimal bottleneck for stages 0..s in groups 0..=g,
    // with group g ending exactly at s.
    let mut dp = vec![vec![f64::INFINITY; ns + 1]; k];
    let mut back = vec![vec![0usize; ns + 1]; k];
    #[allow(clippy::needless_range_loop)] // `s` is a DP index across two tables
    for s in 1..=ns {
        dp[0][s] = group_cost(0, s, 0);
    }
    for g in 1..k {
        for s in (g + 1)..=ns {
            // Previous group ends at p; every group needs ≥ 1 stage.
            for p in g..s {
                let cand = dp[g - 1][p].max(group_cost(p, s, g));
                if cand < dp[g][s] {
                    dp[g][s] = cand;
                    back[g][s] = p;
                }
            }
        }
    }
    if !dp[k - 1][ns].is_finite() {
        return None;
    }
    // Recover the split points.
    let mut ends = vec![0usize; k];
    ends[k - 1] = ns;
    let mut s = ns;
    for g in (1..k).rev() {
        s = back[g][s];
        ends[g - 1] = s;
    }
    Some(ends)
}

/// Steepest-descent local search from `start`.
///
/// Each step first explores only moves touching the current *bottleneck*
/// nodes (the only moves that can raise throughput); when that
/// neighbourhood stalls, one full-neighbourhood pass runs to pick up
/// latency/balance polish, and the search stops when that stalls too.
pub fn local_search(
    profile: &PipelineProfile,
    rates: &[f64],
    topology: &Topology,
    start: Mapping,
    max_width: usize,
    max_steps: usize,
) -> (Mapping, Prediction) {
    let np = rates.len();
    let mut current = start;
    let mut current_pred = evaluate(profile, &current, rates, topology);
    for _ in 0..max_steps {
        let focus: Vec<NodeId> = match current_pred.bottleneck {
            crate::model::Bottleneck::Node(n) => vec![n],
            crate::model::Bottleneck::Link(a, b) => vec![a, b],
        };
        let mut improved = false;
        for (_, cand) in crate::enumerate::neighbours_touching(
            &current,
            np,
            &profile.stateless,
            &profile.replica_cap,
            max_width,
            Some(&focus),
        ) {
            let pred = evaluate(profile, &cand, rates, topology);
            if better(&pred, &current_pred) {
                current = cand;
                current_pred = pred;
                improved = true;
            }
        }
        if !improved {
            // One full pass for polish; stop if even that cannot help.
            for (_, cand) in neighbours(
                &current,
                np,
                &profile.stateless,
                &profile.replica_cap,
                max_width,
            ) {
                let pred = evaluate(profile, &cand, rates, topology);
                if better(&pred, &current_pred) {
                    current = cand;
                    current_pred = pred;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }
    (current, current_pred)
}

/// The planner facade: produces the best mapping it can find for the
/// given forecast snapshot.
///
/// # Panics
/// Panics if `rates` is empty or shorter than the topology.
pub fn plan(
    profile: &PipelineProfile,
    rates: &[f64],
    topology: &Topology,
    config: &PlannerConfig,
) -> Plan {
    profile.validate();
    assert!(!rates.is_empty(), "need at least one node");
    assert_eq!(rates.len(), topology.len(), "rates must cover the topology");
    let ns = profile.stages();
    let np = rates.len();

    if assignment_count(ns, np).is_some_and(|c| c <= config.exhaustive_cap) {
        // Improve the whole tied frontier: equal-throughput optima differ
        // in spread, and only some admit single-step replication gains.
        let frontier_k = if config.max_width > 1 { 16 } else { 1 };
        let frontier =
            exhaustive_frontier(profile, rates, topology, config.exhaustive_cap, frontier_k);
        let mut best: Option<(Mapping, Prediction)> = None;
        for (mapping, prediction) in frontier {
            let (mapping, prediction) = if config.max_width > 1 {
                replicate::improve(profile, mapping, rates, topology, config.max_width)
            } else {
                (mapping, prediction)
            };
            if best.as_ref().is_none_or(|(_, b)| better(&prediction, b)) {
                best = Some((mapping, prediction));
            }
        }
        let (mapping, prediction) = best.expect("non-empty frontier");
        return Plan {
            mapping,
            prediction,
            strategy: Strategy::Exhaustive,
        };
    }

    let base = plan_large(profile, rates, topology, config);
    if config.max_width > 1 {
        let (mapping, prediction) = replicate::improve(
            profile,
            base.mapping.clone(),
            rates,
            topology,
            config.max_width,
        );
        if better(&prediction, &base.prediction) {
            return Plan {
                mapping,
                prediction,
                strategy: base.strategy,
            };
        }
    }
    base
}

/// Large-instance path: DP seed on the fastest nodes + random restarts.
fn plan_large(
    profile: &PipelineProfile,
    rates: &[f64],
    topology: &Topology,
    config: &PlannerConfig,
) -> Plan {
    let ns = profile.stages();
    let np = rates.len();
    let mut rng = Rng64::new(config.seed);

    // Nodes sorted by effective rate, fastest first.
    let mut by_rate: Vec<NodeId> = (0..np).map(NodeId).collect();
    by_rate.sort_by(|a, b| {
        rates[b.index()]
            .partial_cmp(&rates[a.index()])
            .expect("rates must not be NaN")
    });

    let mut best: Option<(Mapping, Prediction)> = None;
    let consider =
        |mapping: Mapping, pred: Prediction, best: &mut Option<(Mapping, Prediction)>| {
            let replace = match best {
                None => true,
                Some((_, b)) => better(&pred, b),
            };
            if replace {
                *best = Some((mapping, pred));
            }
        };

    // Seed 1: contiguous DP over the graph's topological order on the
    // fastest k nodes, for geometrically spaced k (every k would
    // multiply planning cost ~linearly in np for marginal gain — the
    // local search bridges nearby k anyway).
    let k_max = ns.min(np);
    let mut ks: Vec<usize> = std::iter::successors(Some(1usize), |&k| Some(k * 2))
        .take_while(|&k| k < k_max)
        .collect();
    ks.push(k_max);
    for k in ks {
        if let Some(seed) = dp_seed(profile, rates, topology, &by_rate[..k]) {
            let (m, p) = local_search(
                profile,
                rates,
                topology,
                seed,
                config.max_width,
                config.max_steps,
            );
            consider(m, p, &mut best);
        }
    }

    // Seed 2: random restarts.
    for _ in 0..config.restarts {
        let assignment: Vec<NodeId> = (0..ns).map(|_| NodeId(rng.next_range(np))).collect();
        let seed = Mapping::from_assignment(&assignment);
        let (m, p) = local_search(
            profile,
            rates,
            topology,
            seed,
            config.max_width,
            config.max_steps,
        );
        consider(m, p, &mut best);
    }

    let (mapping, prediction) = best.expect("at least one seed ran");
    Plan {
        mapping,
        prediction,
        strategy: Strategy::LocalSearch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_gridsim::net::LinkSpec;
    use adapipe_gridsim::time::SimDuration;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    fn fast_net(np: usize) -> Topology {
        Topology::uniform(np, LinkSpec::new(SimDuration::from_nanos(1), 1e12))
    }

    #[test]
    fn exhaustive_finds_one_to_one_on_balanced_instances() {
        let profile = PipelineProfile::uniform(vec![1.0, 1.0, 1.0], 0);
        let plan = exhaustive_best(&profile, &[1.0, 1.0, 1.0], &fast_net(3), 50_000);
        // Optimal spreads one stage per node: throughput 1.0.
        assert!((plan.prediction.throughput - 1.0).abs() < 1e-9);
        assert_eq!(plan.mapping.nodes_used().len(), 3);
    }

    #[test]
    fn exhaustive_avoids_dead_nodes() {
        let profile = PipelineProfile::uniform(vec![1.0, 1.0], 0);
        let plan = exhaustive_best(&profile, &[1.0, 0.0, 1.0], &fast_net(3), 50_000);
        assert!(!plan.mapping.nodes_used().contains(&n(1)));
        assert!(plan.prediction.throughput > 0.0);
    }

    #[test]
    fn exhaustive_coalesces_under_slow_links() {
        let profile = PipelineProfile::uniform(vec![0.1, 0.1, 0.1], 1_000_000);
        let mut topo = Topology::uniform(3, LinkSpec::new(SimDuration::from_millis(1), 1e6));
        // Make the network painful: 1 s/item per boundary off-node.
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    topo.set(
                        n(a),
                        n(b),
                        LinkSpec::new(SimDuration::from_millis(500), 1e6),
                    );
                }
            }
        }
        let plan = exhaustive_best(&profile, &[1.0, 1.0, 1.0], &topo, 50_000);
        // All stages should share a node: compute 0.3 s/item beats any
        // network crossing (≥ 1.5 s).
        assert_eq!(plan.mapping.nodes_used().len(), 1);
    }

    #[test]
    fn dp_matches_exhaustive_on_fixed_hosts() {
        // 4 stages, 2 hosts in fixed order; DP must find the best split.
        let profile = PipelineProfile::uniform(vec![3.0, 1.0, 1.0, 3.0], 0);
        let rates = [1.0, 1.0];
        let topo = fast_net(2);
        let cm = contiguous_dp(&profile, &rates, &topo, &[n(0), n(1)]).expect("feasible");
        let pred = evaluate(&profile, &cm.to_mapping(), &rates, &topo);
        // Best split is (3+1 | 1+3): bottleneck 4.
        assert!(
            (pred.throughput - 0.25).abs() < 1e-9,
            "tput={}",
            pred.throughput
        );
    }

    #[test]
    fn dp_skews_split_toward_fast_host() {
        let profile = PipelineProfile::uniform(vec![1.0, 1.0, 1.0, 1.0], 0);
        let rates = [3.0, 1.0];
        let topo = fast_net(2);
        let cm = contiguous_dp(&profile, &rates, &topo, &[n(0), n(1)]).expect("feasible");
        // Fast host takes 3 stages (1 s), slow host 1 stage (1 s).
        assert_eq!(cm.group_range(0), (0, 3));
        assert_eq!(cm.group_range(1), (3, 4));
    }

    #[test]
    fn dp_returns_none_when_infeasible() {
        let profile = PipelineProfile::uniform(vec![1.0], 0);
        let topo = fast_net(2);
        assert!(contiguous_dp(&profile, &[1.0, 1.0], &topo, &[]).is_none());
        assert!(contiguous_dp(&profile, &[1.0, 1.0], &topo, &[n(0), n(1)]).is_none());
        // Dead host ⇒ infinite cost everywhere.
        assert!(contiguous_dp(&profile, &[0.0], &fast_net(1), &[n(0)]).is_none());
    }

    #[test]
    fn local_search_respects_declared_replica_cap() {
        // A hot single stage on 4 free nodes with a declared bound of 1:
        // neither bottleneck-focused nor full-neighbourhood passes may
        // widen it, even though max_width = 4 would allow it.
        let mut profile = PipelineProfile::uniform(vec![4.0], 0);
        profile.replica_cap[0] = 1;
        let rates = [1.0; 4];
        let topo = fast_net(4);
        let (m, _) = local_search(
            &profile,
            &rates,
            &topo,
            Mapping::from_assignment(&[n(0)]),
            4,
            200,
        );
        assert_eq!(m.placement(0).width(), 1, "cap violated: {m}");
        // With the cap lifted the identical search must widen.
        profile.replica_cap[0] = usize::MAX;
        let (m, _) = local_search(
            &profile,
            &rates,
            &topo,
            Mapping::from_assignment(&[n(0)]),
            4,
            200,
        );
        assert!(m.placement(0).width() > 1, "uncapped search must widen");
    }

    #[test]
    fn local_search_improves_bad_seed() {
        let profile = PipelineProfile::uniform(vec![1.0, 1.0, 1.0], 0);
        let rates = [1.0, 1.0, 1.0];
        let topo = fast_net(3);
        let seed = Mapping::all_on(n(0), 3);
        let (m, p) = local_search(&profile, &rates, &topo, seed, 1, 100);
        assert!((p.throughput - 1.0).abs() < 1e-9, "tput={}", p.throughput);
        assert_eq!(m.nodes_used().len(), 3);
    }

    #[test]
    fn planner_uses_replication_for_dominant_stage() {
        // One huge stage, two small; four nodes. Replicating the hot
        // stage doubles throughput.
        let profile = PipelineProfile::uniform(vec![0.5, 4.0, 0.5], 0);
        let rates = [1.0, 1.0, 1.0, 1.0];
        let plan = plan(&profile, &rates, &fast_net(4), &PlannerConfig::default());
        assert!(
            plan.prediction.throughput > 0.45,
            "replication should lift throughput above 1/4, got {}",
            plan.prediction.throughput
        );
        assert!(!plan.mapping.is_unreplicated());
    }

    #[test]
    fn planner_prices_branched_graphs() {
        // (hot ‖ cold) → join on four free nodes. The planner sees the
        // series-parallel graph: the hot branch is the bottleneck path,
        // so the replication pass must widen *it* (and only it).
        let mut profile = PipelineProfile::uniform(vec![4.0, 0.5, 0.1], 0);
        profile.graph = crate::graph::StageGraph::builder().split(&[1, 1]).build();
        profile.validate();
        let rates = [1.0; 4];
        let plan = plan(&profile, &rates, &fast_net(4), &PlannerConfig::default());
        assert!(
            plan.prediction.throughput > 0.45,
            "widening the hot branch must lift throughput above 1/4, got {}",
            plan.prediction.throughput
        );
        assert!(
            plan.mapping.placement(0).width() > 1,
            "hot branch stage must be farmed: {}",
            plan.mapping
        );
        // Latency follows the slowest parallel path, so it is bounded by
        // the hot path, not the sum of both branches.
        let hot_path = 4.0 + 0.1;
        assert!(
            plan.prediction.latency <= hot_path + 1e-6,
            "latency {} exceeds the critical path",
            plan.prediction.latency
        );
    }

    #[test]
    fn planner_handles_large_instances_via_local_search() {
        let ns = 12;
        let np = 16; // 16^12 ≫ cap ⇒ local-search path
        let profile = PipelineProfile::uniform(vec![1.0; ns], 0);
        let rates = vec![1.0; np];
        let plan = plan(&profile, &rates, &fast_net(np), &PlannerConfig::default());
        assert_eq!(plan.strategy, Strategy::LocalSearch);
        // Perfectly spreadable: every stage alone ⇒ throughput 1.
        assert!(
            plan.prediction.throughput > 0.9,
            "tput={}",
            plan.prediction.throughput
        );
    }

    #[test]
    fn planner_is_deterministic_per_seed() {
        let profile = PipelineProfile::uniform(vec![2.0, 1.0, 3.0], 0);
        let rates = [1.0, 2.0, 0.5, 1.5];
        let topo = fast_net(4);
        let cfg = PlannerConfig::default();
        let a = plan(&profile, &rates, &topo, &cfg);
        let b = plan(&profile, &rates, &topo, &cfg);
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.prediction.throughput, b.prediction.throughput);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exhaustive_rejects_oversized_instances() {
        let profile = PipelineProfile::uniform(vec![1.0; 20], 0);
        let rates = vec![1.0; 10];
        let _ = exhaustive_best(&profile, &rates, &fast_net(10), 1_000);
    }
}
