//! The streaming session API, exercised end to end: one scenario
//! written once against `RunSession` must behave identically on
//! `Backend::Sim` and `Backend::Threads` — item-exact output parity,
//! matching committed re-mappings (via both `RunHooks::on_remap` and
//! the `RunEvent::Remap` stream), real backpressure under a bounded
//! `queue_capacity`, and in-flight control (pause/resume/force/abort).

use adapipe::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn n(i: usize) -> NodeId {
    NodeId(i)
}

// ---------------------------------------------------------------------
// Scenario written once, parameterised by backend
// ---------------------------------------------------------------------

/// Per-item work each stage declares (and, on threads, actually spins).
const STAGE_SECS: f64 = 0.004;
const ITEMS: u64 = 150;
/// Wall/sim pacing of the pushed stream: 150 items at 150/s ≈ 1 s.
const PUSH_RATE: f64 = 150.0;

/// Node 1 collapses to 5 % availability at t = 0.3 s.
fn collapse() -> LoadModel {
    LoadModel::step(1.0, 0.05, SimTime::from_secs_f64(0.3))
}

fn scenario_pipeline() -> Pipeline<u64, u64> {
    Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("a", STAGE_SECS, 8), |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x + 1
        })
        .stage_with(StageSpec::balanced("b", STAGE_SECS, 8), |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x + 1
        })
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(200),
        })
        .arrivals(ArrivalProcess::Uniform { rate: PUSH_RATE })
        .build()
        .expect("scenario builds")
}

fn scenario_grid() -> GridSpec {
    let nodes = (0..3)
        .map(|i| {
            let load = if i == 1 {
                collapse()
            } else {
                LoadModel::free()
            };
            Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), load)
        })
        .collect();
    GridSpec::new(nodes, Topology::uniform(3, LinkSpec::local()))
}

fn scenario_vnodes() -> Vec<VNodeSpec> {
    vec![
        VNodeSpec::free("v0"),
        VNodeSpec::free("v1").with_load(collapse()),
        VNodeSpec::free("v2"),
    ]
}

struct ScenarioOutcome {
    outputs: Vec<u64>,
    report: RunReport,
    /// (from, to) of every commit seen by the `on_remap` hook, in order.
    hook_remaps: Vec<(Mapping, Mapping)>,
    /// (from, to) of every `RunEvent::Remap`, in order.
    event_remaps: Vec<(Mapping, Mapping)>,
}

/// Drives the scenario through a live session on `backend`: paced
/// pushes (wall pacing for the threaded backend; the simulator also
/// takes the declared arrival process), outputs consumed while
/// producing, graceful drain.
fn run_scenario(backend: Backend<'_>) -> ScenarioOutcome {
    let wall_paced = matches!(backend, Backend::Threads(_));
    let hook_log: Arc<Mutex<Vec<(Mapping, Mapping)>>> = Arc::default();
    let sink = Arc::clone(&hook_log);
    let cfg = RunConfig {
        items: ITEMS,
        initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1)])),
        timeline_bucket: Some(SimDuration::from_millis(500)),
        hooks: RunHooks::on_remap(move |plan| {
            sink.lock()
                .expect("hook log")
                .push((plan.from.clone(), plan.to.clone()));
        }),
        ..RunConfig::default()
    };
    let mut session = scenario_pipeline().spawn(backend, cfg).expect("spawn");
    let events = session.events();

    let mut outputs = Vec::new();
    let epoch = Instant::now();
    for i in 0..ITEMS {
        if wall_paced {
            let due = epoch + Duration::from_secs_f64(i as f64 / PUSH_RATE);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        session.push(i).unwrap();
        // Consume while producing — the stream is live.
        while let TryNext::Item(o) = session.try_next() {
            outputs.push(o);
        }
    }
    let handle = session.drain();
    outputs.extend(handle.outputs);

    let event_remaps = events
        .try_iter()
        .filter_map(|e| match e {
            RunEvent::Remap { plan, .. } => Some((plan.from, plan.to)),
            _ => None,
        })
        .collect();
    let hook_remaps = hook_log.lock().expect("hook log").clone();
    ScenarioOutcome {
        outputs,
        report: handle.report,
        hook_remaps,
        event_remaps,
    }
}

#[test]
fn one_session_scenario_runs_identically_on_both_backends() {
    let grid = scenario_grid();
    let sim = run_scenario(Backend::Sim(&grid));
    let threads = run_scenario(Backend::Threads(scenario_vnodes()));

    // Item-exact output parity: both backends executed the same stage
    // functions on the same pushed items and delivered them in order.
    let expect: Vec<u64> = (0..ITEMS).map(|x| x + 2).collect();
    assert_eq!(sim.outputs, expect, "sim outputs");
    assert_eq!(threads.outputs, expect, "threaded outputs");
    assert_eq!(sim.report.completed, ITEMS);
    assert_eq!(threads.report.completed, ITEMS);
    assert!(!sim.report.truncated && !threads.report.truncated);
}

#[test]
fn remap_events_mirror_hooks_and_agree_across_backends() {
    let grid = scenario_grid();
    let sim = run_scenario(Backend::Sim(&grid));
    let threads = run_scenario(Backend::Threads(scenario_vnodes()));

    for (name, outcome) in [("sim", &sim), ("threads", &threads)] {
        assert!(
            !outcome.hook_remaps.is_empty(),
            "{name}: the collapse must force at least one re-map"
        );
        // RunEvent::Remap is the multi-subscriber generalisation of the
        // on_remap hook: identical commits, identical order.
        assert_eq!(
            outcome.event_remaps, outcome.hook_remaps,
            "{name}: event stream must mirror the hook exactly"
        );
        // The hooks see every commit, the report logs planner-accepted
        // re-maps (guard reverts fire the hook but are not adaptation
        // events), so the live stream is a superset.
        assert!(
            outcome.hook_remaps.len() >= outcome.report.adaptation_count(),
            "{name}: live commits ({}) must cover the report log ({})",
            outcome.hook_remaps.len(),
            outcome.report.adaptation_count()
        );
        // Every commit moves work; the final mapping shuns the
        // collapsed node.
        assert!(
            !outcome.report.final_mapping.nodes_used().contains(&n(1)),
            "{name}: final mapping still uses the collapsed node: {}",
            outcome.report.final_mapping
        );
    }

    // Cross-backend: the same seeded scenario commits the same first
    // re-mapping (identical launch mapping, load schedule, policy, and
    // shared planner) on both backends.
    assert_eq!(
        sim.hook_remaps.first(),
        threads.hook_remaps.first(),
        "first committed re-mapping must agree across backends"
    );
}

// ---------------------------------------------------------------------
// Backpressure semantics
// ---------------------------------------------------------------------

#[test]
fn bounded_push_blocks_when_downstream_stalls_and_drain_is_exactly_once() {
    // queue_capacity = 1 over a single ≥20 ms stage on one vnode gives
    // two in-flight slots; the 3rd..10th pushes must block while the
    // stalled stage grinds, and drain must still deliver every pushed
    // item exactly once.
    let pipeline = Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("grind", 0.020, 8), |x: u64| {
            spin_for(Duration::from_millis(20));
            x * 10
        })
        .build()
        .expect("builds");
    let cfg = RunConfig {
        items: 10,
        queue_capacity: Some(1),
        ..RunConfig::default()
    };
    let mut session = pipeline
        .spawn(Backend::Threads(vec![VNodeSpec::free("v0")]), cfg)
        .expect("spawn");
    let events = session.events();

    let t0 = Instant::now();
    for i in 0..10u64 {
        session.push(i).unwrap();
    }
    let pushing = t0.elapsed();
    assert!(
        pushing >= Duration::from_millis(120),
        "10 pushes through 2 slots of a 20 ms stage must block the \
         source ≈160 ms, took only {pushing:?}"
    );

    let handle = session.drain();
    assert_eq!(handle.report.completed, 10, "every pushed item delivered");
    assert_eq!(
        handle.outputs,
        (0..10u64).map(|x| x * 10).collect::<Vec<_>>(),
        "exactly once, in order"
    );
    let stalls: Vec<SimDuration> = events
        .try_iter()
        .filter_map(|e| match e {
            RunEvent::BackpressureStall { waited, .. } => Some(waited),
            _ => None,
        })
        .collect();
    assert!(
        stalls.len() >= 4,
        "blocked pushes must surface as stall events, saw {}",
        stalls.len()
    );
    assert!(stalls.iter().all(|w| *w > SimDuration::ZERO));
}

#[test]
fn unbounded_session_never_blocks_push() {
    // Same stalled stage, no queue bound: all pushes return immediately.
    let pipeline = Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("grind", 0.020, 8), |x: u64| {
            spin_for(Duration::from_millis(20));
            x
        })
        .build()
        .expect("builds");
    let mut session = pipeline
        .spawn(
            Backend::Threads(vec![VNodeSpec::free("v0")]),
            RunConfig::default(),
        )
        .expect("spawn");
    let t0 = Instant::now();
    for i in 0..10u64 {
        session.push(i).unwrap();
    }
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "unbounded pushes must not wait for the stage"
    );
    let handle = session.drain();
    assert_eq!(handle.report.completed, 10);
}

// ---------------------------------------------------------------------
// In-flight control
// ---------------------------------------------------------------------

/// A deterministic simulated scenario for control tests: node 1 hosts a
/// stage and collapses at t = 5 s; periodic policy at 5 s intervals.
fn control_session(grid: &GridSpec, warmup_override: Option<u32>) -> RunSession<'_, u64, u64> {
    let mut cfg = RunConfig {
        items: 60,
        initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1), n(2)])),
        ..RunConfig::default()
    };
    if let Some(w) = warmup_override {
        cfg.controller.warmup_ticks = w;
    }
    Pipeline::<u64>::builder()
        .stage("a", |x: u64| x)
        .stage("b", |x: u64| x)
        .stage("c", |x: u64| x)
        .policy(Policy::Periodic {
            interval: SimDuration::from_secs(5),
        })
        .arrivals(ArrivalProcess::Uniform { rate: 1.0 })
        .build()
        .expect("builds")
        .spawn(Backend::Sim(grid), cfg)
        .expect("spawn")
}

fn collapsed_grid() -> GridSpec {
    let mut grid = testbed_small3();
    grid.set_load(
        n(1),
        LoadModel::step(1.0, 0.05, SimTime::from_secs_f64(5.0)),
    );
    grid
}

#[test]
fn paused_session_never_remaps_resumed_session_does() {
    let grid = collapsed_grid();

    let mut paused = control_session(&grid, None);
    paused.pause_adaptation();
    for i in 0..60u64 {
        paused.push(i).unwrap();
    }
    let paused_report = paused.drain().report;
    assert_eq!(paused_report.completed, 60);
    assert_eq!(
        paused_report.adaptation_count(),
        0,
        "paused adaptation must freeze re-mapping despite the collapse"
    );

    let mut live = control_session(&grid, None);
    for i in 0..60u64 {
        live.push(i).unwrap();
    }
    let live_report = live.drain().report;
    assert_eq!(live_report.completed, 60);
    assert!(
        live_report.adaptation_count() >= 1,
        "the same scenario unpaused must re-map off the collapsed node"
    );
    // Paying for no adaptation: the paused run is slower.
    assert!(live_report.makespan < paused_report.makespan);
}

#[test]
fn force_remap_bypasses_warmup_gating() {
    let grid = collapsed_grid();

    // With warm-up pushed beyond the run, normal planning never starts…
    let mut gated = control_session(&grid, Some(1_000));
    for i in 0..60u64 {
        gated.push(i).unwrap();
    }
    let gated_report = gated.drain().report;
    assert_eq!(gated_report.planning_cycles, 0);
    assert_eq!(gated_report.adaptation_count(), 0);

    // …but a forced re-map plans (and here commits) regardless.
    let mut forced = control_session(&grid, Some(1_000));
    for i in 0..30u64 {
        forced.push(i).unwrap();
    }
    // Step far enough for the collapse to be observed, then force.
    while forced.completed() < 20 {
        assert!(forced.next().is_some());
    }
    forced.force_remap();
    for i in 30..60u64 {
        forced.push(i).unwrap();
    }
    let forced_report = forced.drain().report;
    assert_eq!(forced_report.completed, 60);
    assert!(
        forced_report.planning_cycles >= 1,
        "force_remap must run a planning cycle despite the warm-up gate"
    );
    assert!(
        forced_report.adaptation_count() >= 1,
        "with a collapsed node the forced cycle must commit"
    );
}

#[test]
fn abort_truncates_threads_session() {
    let pipeline = Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("grind", 0.020, 8), |x: u64| {
            spin_for(Duration::from_millis(20));
            x
        })
        .build()
        .expect("builds");
    let mut session = pipeline
        .spawn(
            Backend::Threads(vec![VNodeSpec::free("v0")]),
            RunConfig::default(),
        )
        .expect("spawn");
    for i in 0..100u64 {
        session.push(i).unwrap();
    }
    let report = session.abort();
    assert!(
        report.truncated || report.completed == 100,
        "abort mid-stream loses items (truncated) unless the run got lucky"
    );
}

#[test]
fn abort_truncates_sim_session() {
    let grid = testbed_small3();
    let pipeline = Pipeline::<u64>::builder()
        .stage("a", |x: u64| x)
        .build()
        .expect("builds");
    let mut session = pipeline
        .spawn(Backend::Sim(&grid), RunConfig::default())
        .expect("spawn");
    for i in 0..5u64 {
        session.push(i).unwrap();
    }
    // Deliver one item, abandon the rest.
    assert_eq!(session.next(), Some(0));
    let report = session.abort();
    assert_eq!(report.completed, 1);
    assert!(report.truncated);
}

// ---------------------------------------------------------------------
// Session surface details
// ---------------------------------------------------------------------

#[test]
fn try_next_distinguishes_pending_from_done() {
    let grid = testbed_small3();
    let pipeline = Pipeline::<u64>::builder()
        .stage("inc", |x: u64| x + 1)
        .build()
        .expect("builds");
    let mut session = pipeline
        .spawn(Backend::Sim(&grid), RunConfig::default())
        .expect("spawn");
    // Nothing pushed yet: an open idle stream is Pending, never Done.
    assert_eq!(session.try_next(), TryNext::Pending);
    session.push(7).unwrap();
    // try_next never advances virtual time on the simulator.
    assert_eq!(session.try_next(), TryNext::Pending);
    assert_eq!(session.next(), Some(8), "next() drives the world");
    assert_eq!(session.try_next(), TryNext::Pending, "still open");
    session.close();
    assert_eq!(session.try_next(), TryNext::Done);
}

#[test]
fn session_counters_track_progress() {
    let pipeline = Pipeline::<u64>::builder()
        .stage("id", |x: u64| x)
        .build()
        .expect("builds");
    let mut session = pipeline
        .spawn(
            Backend::Threads(vec![VNodeSpec::free("v0")]),
            RunConfig::default(),
        )
        .expect("spawn");
    assert_eq!(session.pushed(), 0);
    for i in 0..10u64 {
        session.push(i).unwrap();
    }
    assert_eq!(session.pushed(), 10);
    assert!(session.in_flight() <= 10);
    let handle = session.drain();
    assert_eq!(handle.report.completed, 10);
}

#[test]
fn zero_queue_capacity_is_a_typed_error() {
    let grid = testbed_small3();
    let cfg = RunConfig {
        queue_capacity: Some(0),
        ..RunConfig::default()
    };
    let err = Pipeline::<u64>::builder()
        .stage("id", |x: u64| x)
        .build()
        .expect("builds")
        .spawn(Backend::Sim(&grid), cfg)
        .unwrap_err();
    assert!(matches!(err, BuildError::ZeroQueueCapacity), "{err}");
}

#[test]
fn spawn_validates_like_run() {
    // Least-loaded selection is still unsupported on threads…
    let cfg = RunConfig {
        selection: Selection::LeastLoaded,
        ..RunConfig::default()
    };
    let err = Pipeline::<u64>::builder()
        .stage("id", |x: u64| x)
        .build()
        .expect("builds")
        .spawn(Backend::Threads(vec![VNodeSpec::free("v0")]), cfg)
        .unwrap_err();
    assert!(matches!(err, BuildError::UnsupportedSelection { .. }));

    // …and a bad launch mapping is caught before anything starts.
    let grid = testbed_small3();
    let cfg = RunConfig {
        initial_mapping: Some(Mapping::from_assignment(&[n(0), n(1)])),
        ..RunConfig::default()
    };
    let err = Pipeline::<u64>::builder()
        .stage("only", |x: u64| x)
        .build()
        .expect("builds")
        .spawn(Backend::Sim(&grid), cfg)
        .unwrap_err();
    assert!(matches!(err, BuildError::InvalidMapping { .. }));
}

#[test]
fn report_to_json_is_machine_readable() {
    let grid = collapsed_grid();
    let mut session = control_session(&grid, None);
    for i in 0..60u64 {
        session.push(i).unwrap();
    }
    let report = session.drain().report;
    let json = report.to_json();
    for key in [
        "\"completed\":60",
        "\"adaptation_count\":",
        "\"final_mapping\":",
        "\"latency_p95_secs\":",
        "\"truncated\":false",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "unbalanced JSON");
}
