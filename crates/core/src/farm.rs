//! The task-farm skeleton, expressed through the adaptive pipeline.
//!
//! Gonzalez-Velez & Cole's adaptive-structured-parallelism line treats
//! *pipeline* and *farm* as the two workhorse skeletons, and their
//! composition ("pipelines of farms") as the common application shape.
//! In this implementation a farm **is** a one-stage pipeline whose stage
//! is stateless — the planner's replication pass then spreads it over as
//! many nodes as pay off, and all of the adaptation machinery (monitor,
//! forecast, re-map, hysteresis) applies unchanged.
//!
//! This module provides the conveniences that make that composition
//! pleasant: farm construction from a worker function, and farm-stage
//! insertion into a longer pipeline.

use crate::pipeline::{Pipeline, PipelineBuilder};
use crate::spec::{PipelineSpec, StageSpec};
use adapipe_runtime::session::BuildError;

/// Builds a task farm: a single stateless stage intended for replication
/// across grid nodes.
///
/// `spec` carries the cost metadata (work per item, output size); the
/// planner decides the replication width at run time, bounded by
/// `PlannerConfig::max_width`.
///
/// ```
/// use adapipe_core::farm::farm;
/// use adapipe_core::spec::StageSpec;
///
/// let f = farm(StageSpec::balanced("render", 4.0, 1 << 20), |scene: u64| scene * 2)
///     .expect("stateless worker");
/// assert_eq!(f.len(), 1);
/// ```
///
/// # Errors
/// Returns [`BuildError::StatefulFarm`] when `spec` is declared
/// stateful — a farm worker exists to be replicated, which state
/// forbids. (Historically this was a construction-time panic; it is now
/// typed, consistent with the unified builder's other validations.)
pub fn farm<I, O, F>(spec: StageSpec, worker: F) -> Result<Pipeline<I, O>, BuildError>
where
    I: Send + 'static,
    O: Send + 'static,
    F: FnMut(I) -> O + Send + Clone + 'static,
{
    if !spec.stateless {
        return Err(BuildError::StatefulFarm {
            stage: spec.name.clone(),
        });
    }
    Ok(PipelineBuilder::<I>::new().stage(spec, worker).build())
}

/// The simulation-side counterpart: a one-stage [`PipelineSpec`] with
/// the given per-item work and output size.
pub fn farm_spec(work: f64, bytes: u64) -> PipelineSpec {
    let mut spec = PipelineSpec::new(vec![StageSpec::balanced("farm", work, bytes)]);
    spec.input_bytes = bytes;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::simengine::{run, SimConfig};
    use adapipe_gridsim::grid::GridSpec;
    use adapipe_gridsim::load::LoadModel;
    use adapipe_gridsim::net::{LinkSpec, Topology};
    use adapipe_gridsim::node::{Node, NodeSpec};
    use adapipe_gridsim::time::SimDuration;

    fn uniform_grid(np: usize) -> GridSpec {
        let nodes = (0..np)
            .map(|i| Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), LoadModel::free()))
            .collect();
        GridSpec::new(nodes, Topology::uniform(np, LinkSpec::lan()))
    }

    #[test]
    fn farm_is_a_one_stage_pipeline() {
        let f = farm(StageSpec::balanced("w", 1.0, 8), |x: u32| x + 1).expect("stateless");
        assert_eq!(f.len(), 1);
        assert!(f.spec().profile().stateless[0]);
    }

    #[test]
    fn simulated_farm_scales_with_nodes() {
        // 1 unit of work per item; the planner may replicate up to 8 wide.
        let spec = farm_spec(1.0, 1_000);
        let items = 200u64;
        let mut makespans = Vec::new();
        for np in [1usize, 2, 4, 8] {
            let mut cfg = SimConfig {
                items,
                ..SimConfig::default()
            };
            cfg.controller.planner.max_width = 8;
            let report = run(&uniform_grid(np), &spec, &cfg);
            assert_eq!(report.completed, items);
            makespans.push(report.makespan.as_secs_f64());
        }
        // Farm throughput scales near-linearly: 8 nodes ≥ 6x faster than 1.
        let speedup = makespans[0] / makespans[3];
        assert!(speedup > 6.0, "8-node farm speedup {speedup:.2}");
        // And monotone in between.
        assert!(makespans.windows(2).all(|w| w[1] <= w[0] * 1.01));
    }

    #[test]
    fn adaptive_farm_survives_worker_loss() {
        use adapipe_gridsim::fault::FaultPlan;
        use adapipe_gridsim::node::NodeId;
        use adapipe_gridsim::time::SimTime;

        let mut grid = uniform_grid(4);
        FaultPlan::new()
            .crash(NodeId(2), SimTime::from_secs_f64(20.0))
            .apply(&mut grid);
        let spec = farm_spec(1.0, 0);
        let mut cfg = SimConfig {
            items: 300,
            policy: Policy::Periodic {
                interval: SimDuration::from_secs(5),
            },
            ..SimConfig::default()
        };
        cfg.controller.planner.max_width = 4;
        let report = run(&grid, &spec, &cfg);
        assert_eq!(report.completed, 300, "farm must re-spread after the crash");
        assert!(report.adaptation_count() >= 1);
        assert!(!report.final_mapping.placement(0).contains(NodeId(2)));
    }

    #[test]
    fn stateful_farm_worker_is_a_typed_error() {
        use adapipe_runtime::session::BuildError;
        let err = match farm::<u32, u32, _>(StageSpec::balanced("w", 1.0, 0).with_state(64), |x| x)
        {
            Err(err) => err,
            Ok(_) => panic!("stateful farm must be rejected"),
        };
        assert_eq!(err, BuildError::StatefulFarm { stage: "w".into() });
        assert!(err.to_string().contains("'w'"));
    }
}
