//! The contract between the shared adaptive runtime and an execution
//! backend.
//!
//! A backend owns item transport and stage execution — event queues and
//! integrated service times in the simulator, worker threads and
//! channels in the threaded engine, something else entirely in a future
//! async or multi-process backend. Everything *adaptive* is delegated
//! upward: the [`crate::adapt::AdaptationLoop`] senses, forecasts, plans
//! and decides through this trait, and hands back a [`RemapPlan`] for
//! the backend to realise physically.

use adapipe_gridsim::time::{SimDuration, SimTime};
use adapipe_mapper::mapping::Mapping;

/// An accepted re-mapping, fully priced, for the backend to commit.
///
/// By the time a backend sees the plan, the routing table already
/// points at [`RemapPlan::to`]; the backend's job is the *physical*
/// part — draining or re-homing queues, handing stateful instances
/// over, blocking new hosts until state lands at [`RemapPlan::ready_at`].
#[derive(Clone, Debug)]
pub struct RemapPlan {
    /// Mapping before the re-map.
    pub from: Mapping,
    /// Mapping now in force.
    pub to: Mapping,
    /// Stages whose placement changed.
    pub moved: Vec<usize>,
    /// Migration cost charged (state transfer + drain overhead).
    pub migration_cost: SimDuration,
    /// When the re-mapping was decided.
    pub at: SimTime,
    /// When migrated state arrives and moved stages may serve again.
    pub ready_at: SimTime,
}

/// What an execution backend must expose to be adapted.
///
/// The methods are exactly the backend-specific inputs of the paper's
/// control loop; see `README.md` ("writing a new backend") for the
/// checklist. All times are on the backend's own clock — simulated
/// seconds for the simulator, wall seconds since start for the threaded
/// engine — and the runtime never mixes clocks across backends.
pub trait ExecutionBackend {
    /// Number of (virtual) nodes the backend schedules onto.
    fn node_count(&self) -> usize;

    /// The backend's current time.
    fn now(&self) -> SimTime;

    /// Ground-truth mean availability of `node` over `[from, to]`; the
    /// adaptation loop guarantees `from < to`, and perturbs the result
    /// with observation noise before the forecaster sees it, mirroring
    /// an imperfect grid sensor.
    fn mean_availability(&self, node: usize, from: SimTime, to: SimTime) -> f64;

    /// Items that have reached the sink so far.
    fn completed(&self) -> u64;

    /// Clairvoyant effective rates over `[from, to]` for
    /// [`crate::policy::Policy::Oracle`]: nominal speed × true mean
    /// availability of the window.
    fn oracle_rates(&self, from: SimTime, to: SimTime) -> Vec<f64>;

    /// Realises an accepted re-mapping: re-home queued items, hand over
    /// stateful instances, release replicas on vacated hosts. The
    /// routing table has already been swapped when this is called.
    fn commit_remap(&mut self, plan: &RemapPlan);

    /// Instrumentation hook a backend invokes on itself when it starts
    /// an item on a stage replica (the simulation backend calls it from
    /// its dispatch path; backends whose dispatch is distributed across
    /// worker threads, like the threaded engine, cannot). The default
    /// does nothing; override to count or trace per-replica dispatch.
    fn on_dispatch(&mut self, _stage: usize, _node: usize, _item: u64) {}

    /// A node of the run's fault plan went down at `at` (the routing
    /// table has already been updated to exclude it). Backends override
    /// this to do the physical part: the threaded engine wakes the dead
    /// worker so it evacuates buffered items to live replicas, the
    /// simulator arms its replay accounting. The default does nothing.
    fn on_node_down(&mut self, _node: usize, _at: SimTime) {}

    /// A node recovered at `at` (routing may use it again). The default
    /// does nothing.
    fn on_node_up(&mut self, _node: usize, _at: SimTime) {}
}
