//! Fault injection: planned slowdowns and outages.
//!
//! Faults are expressed as *transformations of load models*, keeping the
//! simulator's "availability is a pure function of time" invariant: the
//! fault plan is applied to a [`GridSpec`] before the run starts, and the
//! run itself stays deterministic.

use crate::grid::GridSpec;
use crate::node::NodeId;
use crate::time::SimTime;

/// One planned fault on one node.
#[derive(Clone, Debug)]
pub enum Fault {
    /// The node's availability drops to `level` from `from` to `to`
    /// (another job occupies most of the machine).
    Slowdown {
        /// Affected node.
        node: NodeId,
        /// Start of the degradation.
        from: SimTime,
        /// End of the degradation.
        to: SimTime,
        /// Availability during the window, in `[0, 1)`.
        level: f64,
    },
    /// The node is completely unusable from `from` to `to`.
    Outage {
        /// Affected node.
        node: NodeId,
        /// Start of the outage.
        from: SimTime,
        /// End of the outage.
        to: SimTime,
    },
    /// The node never recovers after `at`.
    Crash {
        /// Affected node.
        node: NodeId,
        /// Instant of the crash.
        at: SimTime,
    },
}

impl Fault {
    /// The node this fault affects.
    pub fn node(&self) -> NodeId {
        match self {
            Fault::Slowdown { node, .. }
            | Fault::Outage { node, .. }
            | Fault::Crash { node, .. } => *node,
        }
    }
}

/// An ordered collection of faults applied to a grid before a run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a slowdown window.
    pub fn slowdown(mut self, node: NodeId, from: SimTime, to: SimTime, level: f64) -> Self {
        assert!(from < to, "fault window must be non-empty");
        assert!(
            (0.0..1.0).contains(&level),
            "slowdown level must be in [0,1)"
        );
        self.faults.push(Fault::Slowdown {
            node,
            from,
            to,
            level,
        });
        self
    }

    /// Adds a full outage window.
    pub fn outage(mut self, node: NodeId, from: SimTime, to: SimTime) -> Self {
        assert!(from < to, "fault window must be non-empty");
        self.faults.push(Fault::Outage { node, from, to });
        self
    }

    /// Adds a permanent crash.
    pub fn crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.faults.push(Fault::Crash { node, at });
        self
    }

    /// The planned faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True if the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies every fault to `grid`, rewriting the affected nodes' load
    /// models. Faults compose left to right (each overlays the result of
    /// the previous one, combining via `min`).
    pub fn apply(&self, grid: &mut GridSpec) {
        for fault in &self.faults {
            let node = fault.node();
            let base = grid.node(node).load.clone();
            let rewritten = match *fault {
                Fault::Outage { from, to, .. } => base.with_outages(&[(from, to)]),
                Fault::Crash { at, .. } => {
                    // An outage that never ends: overlay zero availability
                    // from `at` to effectively-forever.
                    let far = SimTime::from_nanos(u64::MAX / 2);
                    base.with_outages(&[(at, far)])
                }
                Fault::Slowdown {
                    from, to, level, ..
                } => base.with_cap_window(from, to, level),
            };
            grid.set_load(node, rewritten);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::testbed_small3;
    use crate::load::LoadModel;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn slowdown_caps_availability_in_window_only() {
        let mut g = testbed_small3();
        FaultPlan::new()
            .slowdown(NodeId(0), secs(10.0), secs(20.0), 0.25)
            .apply(&mut g);
        let n = g.node(NodeId(0));
        assert_eq!(n.load.availability(secs(5.0)), 1.0);
        assert_eq!(n.load.availability(secs(15.0)), 0.25);
        assert_eq!(n.load.availability(secs(25.0)), 1.0);
        // Other nodes untouched.
        assert_eq!(g.node(NodeId(1)).load.availability(secs(15.0)), 1.0);
    }

    #[test]
    fn outage_zeroes_window() {
        let mut g = testbed_small3();
        FaultPlan::new()
            .outage(NodeId(2), secs(1.0), secs(2.0))
            .apply(&mut g);
        assert_eq!(g.node(NodeId(2)).load.availability(secs(1.5)), 0.0);
        assert_eq!(g.node(NodeId(2)).load.availability(secs(2.5)), 1.0);
    }

    #[test]
    fn crash_is_permanent() {
        let mut g = testbed_small3();
        FaultPlan::new().crash(NodeId(1), secs(30.0)).apply(&mut g);
        let n = g.node(NodeId(1));
        assert_eq!(n.load.availability(secs(29.0)), 1.0);
        assert_eq!(n.load.availability(secs(31.0)), 0.0);
        assert_eq!(n.load.availability(secs(1e6)), 0.0);
    }

    #[test]
    fn slowdown_respects_underlying_model() {
        // Base availability 0.1 is *below* the 0.5 cap: min() keeps 0.1.
        let mut g = testbed_small3();
        g.set_load(NodeId(0), LoadModel::constant(0.1));
        FaultPlan::new()
            .slowdown(NodeId(0), secs(0.0), secs(10.0), 0.5)
            .apply(&mut g);
        assert_eq!(g.node(NodeId(0)).load.availability(secs(5.0)), 0.1);
    }

    #[test]
    fn faults_compose() {
        let mut g = testbed_small3();
        FaultPlan::new()
            .slowdown(NodeId(0), secs(0.0), secs(10.0), 0.5)
            .outage(NodeId(0), secs(2.0), secs(4.0))
            .apply(&mut g);
        let n = g.node(NodeId(0));
        assert_eq!(n.load.availability(secs(1.0)), 0.5);
        assert_eq!(n.load.availability(secs(3.0)), 0.0);
        assert_eq!(n.load.availability(secs(5.0)), 0.5);
        assert_eq!(n.load.availability(secs(11.0)), 1.0);
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let mut g = testbed_small3();
        let before = g.node(NodeId(0)).load.availability(secs(1.0));
        FaultPlan::new().apply(&mut g);
        assert_eq!(g.node(NodeId(0)).load.availability(secs(1.0)), before);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_window_panics() {
        let _ = FaultPlan::new().outage(NodeId(0), secs(5.0), secs(1.0));
    }
}
