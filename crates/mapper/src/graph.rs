//! Series-parallel stage graphs: the shape of a pipeline.
//!
//! Historically the stage topology was implicit — a pipeline *was* a
//! `Vec` of stages, and every layer (model, planner, engines) hard-coded
//! the chain `0 → 1 → … → Ns−1`. A [`StageGraph`] makes the shape
//! explicit and strictly more general: a pipeline is a series of
//! [`Segment`]s, each either a **chain** of stages or a **parallel
//! block** that fans every item out to N branch sub-pipelines and fans
//! the branch results back in at a deterministic **merge** stage.
//!
//! Stages keep *flattened* ids: the graph is laid over `0..Ns` in series
//! order — chain stages first, then (inside a parallel block) branch 0's
//! stages, branch 1's, …, then the merge stage. A linear pipeline is the
//! degenerate one-chain graph ([`StageGraph::linear`]), so every
//! existing `Mapping`, `RoutingTable`, and report indexes stages exactly
//! as before; only the *edges* between stages change.
//!
//! The graph answers the questions the other layers ask:
//!
//! * the model: which directed edges carry data, and what is the
//!   latency-critical path ([`StageGraph::feed_of`], walking
//!   [`StageGraph::segments`]);
//! * the engines: where does an item go after finishing a stage
//!   ([`StageGraph::after`], [`StageGraph::entry`]);
//! * observability: which branch a stage belongs to
//!   ([`StageGraph::branch_of`]).

/// One series element of a [`StageGraph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Segment {
    /// Stages `start..end` in series.
    Chain {
        /// First stage of the run.
        start: usize,
        /// One past the last stage of the run.
        end: usize,
    },
    /// A parallel block: each item fans out to every branch (a
    /// contiguous stage span `start..end`), and the branch results fan
    /// back in at the `merge` stage, which follows the last branch
    /// directly in flattened order.
    Parallel {
        /// Branch stage spans `(start, end)`, in branch order.
        branches: Vec<(usize, usize)>,
        /// The merge stage combining one output per branch into one
        /// item.
        merge: usize,
    },
}

/// Where an item goes after finishing a stage (or entering the
/// pipeline).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Next {
    /// Forward to this stage.
    Stage(usize),
    /// Fan out: one copy to the entry stage of every branch of block
    /// `block`.
    FanOut {
        /// Index of the parallel block (in graph order).
        block: usize,
    },
    /// The finished stage is the last of `branch` in `block`: its output
    /// joins the block's other branch outputs at the merge stage.
    Join {
        /// Index of the parallel block.
        block: usize,
        /// Branch index within the block.
        branch: usize,
    },
    /// The finished stage was the last: the item is a pipeline output.
    Done,
}

/// What feeds a stage its input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Feed {
    /// The pipeline input (stage is an entry point).
    Source,
    /// The output of one upstream stage.
    Stage(usize),
    /// The joined outputs of a parallel block: one per branch-last
    /// stage, in branch order.
    Merge(Vec<usize>),
}

/// The series-parallel shape of a pipeline over flattened stage ids
/// `0..len()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageGraph {
    segments: Vec<Segment>,
    stages: usize,
}

impl StageGraph {
    /// The degenerate graph: `ns` stages in one chain — exactly the
    /// historical linear pipeline.
    ///
    /// # Panics
    /// Panics if `ns` is zero.
    pub fn linear(ns: usize) -> Self {
        assert!(ns > 0, "pipeline needs at least one stage");
        StageGraph {
            segments: vec![Segment::Chain { start: 0, end: ns }],
            stages: ns,
        }
    }

    /// Starts a [`StageGraphBuilder`].
    pub fn builder() -> StageGraphBuilder {
        StageGraphBuilder {
            segments: Vec::new(),
            cursor: 0,
        }
    }

    /// Number of stages (flattened, merge stages included).
    #[allow(clippy::len_without_is_empty)] // a graph is never empty
    pub fn len(&self) -> usize {
        self.stages
    }

    /// True if the graph is a single chain — the historical pipeline
    /// shape. Every layer short-circuits to its pre-graph code path on
    /// this, so linear pipelines behave byte-identically to before.
    pub fn is_linear(&self) -> bool {
        !self
            .segments
            .iter()
            .any(|s| matches!(s, Segment::Parallel { .. }))
    }

    /// The series segments in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of parallel blocks.
    pub fn blocks(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Parallel { .. }))
            .count()
    }

    fn block(&self, block: usize) -> (&[(usize, usize)], usize) {
        let mut seen = 0;
        for seg in &self.segments {
            if let Segment::Parallel { branches, merge } = seg {
                if seen == block {
                    return (branches, *merge);
                }
                seen += 1;
            }
        }
        panic!("block {block} out of range ({} blocks)", self.blocks());
    }

    /// Entry stages of every branch of `block`, in branch order.
    pub fn branch_entries(&self, block: usize) -> Vec<usize> {
        self.block(block).0.iter().map(|&(s, _)| s).collect()
    }

    /// Number of branches of `block`.
    pub fn branch_count(&self, block: usize) -> usize {
        self.block(block).0.len()
    }

    /// The merge stage of `block`.
    pub fn merge_of(&self, block: usize) -> usize {
        self.block(block).1
    }

    /// The `(block, branch)` containing `stage`, or `None` for series
    /// stages (merge stages included — a merge runs after the join and
    /// belongs to no single branch).
    pub fn branch_of(&self, stage: usize) -> Option<(usize, usize)> {
        let mut block = 0;
        for seg in &self.segments {
            if let Segment::Parallel { branches, .. } = seg {
                for (bi, &(start, end)) in branches.iter().enumerate() {
                    if (start..end).contains(&stage) {
                        return Some((block, bi));
                    }
                }
                block += 1;
            }
        }
        None
    }

    /// True if `stage` is the merge stage of some parallel block;
    /// returns the block index.
    pub fn merge_block_of(&self, stage: usize) -> Option<usize> {
        let mut block = 0;
        for seg in &self.segments {
            if let Segment::Parallel { merge, .. } = seg {
                if *merge == stage {
                    return Some(block);
                }
                block += 1;
            }
        }
        None
    }

    /// Where the pipeline input goes: the first stage, or a fan-out if
    /// the graph opens with a parallel block.
    pub fn entry(&self) -> Next {
        match &self.segments[0] {
            Segment::Chain { start, .. } => Next::Stage(*start),
            Segment::Parallel { .. } => Next::FanOut { block: 0 },
        }
    }

    /// Where an item goes after finishing `stage`.
    ///
    /// # Panics
    /// Panics if `stage` is out of range.
    pub fn after(&self, stage: usize) -> Next {
        assert!(stage < self.stages, "stage {stage} out of range");
        let mut block = 0;
        for (i, seg) in self.segments.iter().enumerate() {
            match seg {
                Segment::Chain { start, end } => {
                    if (*start..*end).contains(&stage) {
                        if stage + 1 < *end {
                            return Next::Stage(stage + 1);
                        }
                        return self.after_segment(i, block);
                    }
                }
                Segment::Parallel { branches, merge } => {
                    for (bi, &(bs, be)) in branches.iter().enumerate() {
                        if (bs..be).contains(&stage) {
                            if stage + 1 < be {
                                return Next::Stage(stage + 1);
                            }
                            return Next::Join { block, branch: bi };
                        }
                    }
                    if stage == *merge {
                        return self.after_segment(i, block);
                    }
                    block += 1;
                }
            }
        }
        unreachable!("validated graphs cover every stage")
    }

    /// What follows segment `i` (whose last parallel block index, if it
    /// is one, is `block_here`).
    fn after_segment(&self, i: usize, block_here: usize) -> Next {
        let blocks_before_next = match &self.segments[i] {
            Segment::Parallel { .. } => block_here + 1,
            Segment::Chain { .. } => block_here,
        };
        match self.segments.get(i + 1) {
            None => Next::Done,
            Some(Segment::Chain { start, .. }) => Next::Stage(*start),
            Some(Segment::Parallel { .. }) => Next::FanOut {
                block: blocks_before_next,
            },
        }
    }

    /// What feeds `stage` its input.
    ///
    /// # Panics
    /// Panics if `stage` is out of range.
    pub fn feed_of(&self, stage: usize) -> Feed {
        assert!(stage < self.stages, "stage {stage} out of range");
        // `prev` = the stage whose output feeds the next series element
        // (None while nothing upstream exists: the pipeline input).
        let mut prev: Option<usize> = None;
        for seg in &self.segments {
            match seg {
                Segment::Chain { start, end } => {
                    if (*start..*end).contains(&stage) {
                        return if stage == *start {
                            prev.map_or(Feed::Source, Feed::Stage)
                        } else {
                            Feed::Stage(stage - 1)
                        };
                    }
                    prev = Some(end - 1);
                }
                Segment::Parallel { branches, merge } => {
                    for &(bs, be) in branches {
                        if (bs..be).contains(&stage) {
                            return if stage == bs {
                                prev.map_or(Feed::Source, Feed::Stage)
                            } else {
                                Feed::Stage(stage - 1)
                            };
                        }
                    }
                    if stage == *merge {
                        return Feed::Merge(branches.iter().map(|&(_, be)| be - 1).collect());
                    }
                    prev = Some(*merge);
                }
            }
        }
        unreachable!("validated graphs cover every stage")
    }

    /// Bytes carried into `stage` per item, given the pipeline's
    /// boundary sizes (`boundary_bytes[0]` = input bytes,
    /// `boundary_bytes[s + 1]` = stage `s`'s output bytes). A merge
    /// stage's input is the largest branch output — the conservative
    /// size for forwarding a single in-transit branch payload.
    pub fn feed_bytes(&self, stage: usize, boundary_bytes: &[u64]) -> u64 {
        match self.feed_of(stage) {
            Feed::Source => boundary_bytes[0],
            Feed::Stage(p) => boundary_bytes[p + 1],
            Feed::Merge(lasts) => lasts
                .iter()
                .map(|&l| boundary_bytes[l + 1])
                .max()
                .unwrap_or(0),
        }
    }

    /// Validates the graph against a stage count: segments must tile
    /// `0..ns` exactly in series order, every chain and branch span must
    /// be non-empty, every parallel block needs at least two branches,
    /// and each merge stage must directly follow its last branch.
    ///
    /// # Panics
    /// Panics on any violation.
    pub fn validate(&self, ns: usize) {
        assert!(
            !self.segments.is_empty(),
            "graph needs at least one segment"
        );
        assert_eq!(
            self.stages, ns,
            "graph covers {} stages, need {ns}",
            self.stages
        );
        let mut cursor = 0usize;
        for seg in &self.segments {
            match seg {
                Segment::Chain { start, end } => {
                    assert_eq!(*start, cursor, "chain must start at stage {cursor}");
                    assert!(end > start, "chain must be non-empty");
                    cursor = *end;
                }
                Segment::Parallel { branches, merge } => {
                    assert!(
                        branches.len() >= 2,
                        "a parallel block needs at least two branches"
                    );
                    for &(bs, be) in branches {
                        assert_eq!(bs, cursor, "branch must start at stage {cursor}");
                        assert!(be > bs, "branch must be non-empty");
                        cursor = be;
                    }
                    assert_eq!(*merge, cursor, "merge must follow the last branch");
                    cursor += 1;
                }
            }
        }
        assert_eq!(cursor, ns, "graph covers {cursor} stages, need {ns}");
    }
}

/// Incremental [`StageGraph`] construction in flattened stage order.
///
/// ```
/// use adapipe_mapper::graph::StageGraph;
///
/// // decode → (analyze ‖ thumbnail) → merge → pack
/// let g = StageGraph::builder().stages(1).split(&[1, 1]).stages(1).build();
/// assert_eq!(g.len(), 5);
/// assert!(!g.is_linear());
/// assert_eq!(g.merge_of(0), 3);
/// ```
#[derive(Clone, Debug)]
pub struct StageGraphBuilder {
    segments: Vec<Segment>,
    cursor: usize,
}

impl StageGraphBuilder {
    /// Appends `k` series stages (coalesced into the previous chain
    /// segment when one is open).
    pub fn stages(mut self, k: usize) -> Self {
        if k == 0 {
            return self;
        }
        if let Some(Segment::Chain { end, .. }) = self.segments.last_mut() {
            *end += k;
        } else {
            self.segments.push(Segment::Chain {
                start: self.cursor,
                end: self.cursor + k,
            });
        }
        self.cursor += k;
        self
    }

    /// Appends a parallel block whose branches have the given stage
    /// counts, followed by its merge stage.
    ///
    /// # Panics
    /// Panics with fewer than two branches or an empty branch.
    pub fn split(mut self, branch_lens: &[usize]) -> Self {
        assert!(
            branch_lens.len() >= 2,
            "a parallel block needs at least two branches"
        );
        let mut branches = Vec::with_capacity(branch_lens.len());
        for &len in branch_lens {
            assert!(len > 0, "branch must be non-empty");
            branches.push((self.cursor, self.cursor + len));
            self.cursor += len;
        }
        let merge = self.cursor;
        self.cursor += 1;
        self.segments.push(Segment::Parallel { branches, merge });
        self
    }

    /// Finalises and validates the graph.
    ///
    /// # Panics
    /// Panics if no stage was added.
    pub fn build(self) -> StageGraph {
        let graph = StageGraph {
            segments: self.segments,
            stages: self.cursor,
        };
        graph.validate(graph.stages);
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// pre → (a0 a1 ‖ b0) → merge → post  ⇒ ids 0 | 1 2 | 3 | 4 | 5
    fn sample() -> StageGraph {
        StageGraph::builder()
            .stages(1)
            .split(&[2, 1])
            .stages(1)
            .build()
    }

    #[test]
    fn linear_graph_is_the_degenerate_chain() {
        let g = StageGraph::linear(3);
        g.validate(3);
        assert!(g.is_linear());
        assert_eq!(g.len(), 3);
        assert_eq!(g.blocks(), 0);
        assert_eq!(g.entry(), Next::Stage(0));
        assert_eq!(g.after(0), Next::Stage(1));
        assert_eq!(g.after(2), Next::Done);
        assert_eq!(g.feed_of(0), Feed::Source);
        assert_eq!(g.feed_of(2), Feed::Stage(1));
        assert_eq!(g.branch_of(1), None);
    }

    #[test]
    fn sample_graph_flattens_and_navigates() {
        let g = sample();
        g.validate(6);
        assert!(!g.is_linear());
        assert_eq!(g.blocks(), 1);
        assert_eq!(g.branch_entries(0), vec![1, 3]);
        assert_eq!(g.branch_count(0), 2);
        assert_eq!(g.merge_of(0), 4);
        assert_eq!(g.merge_block_of(4), Some(0));
        assert_eq!(g.merge_block_of(1), None);

        assert_eq!(g.entry(), Next::Stage(0));
        assert_eq!(g.after(0), Next::FanOut { block: 0 });
        assert_eq!(g.after(1), Next::Stage(2));
        assert_eq!(
            g.after(2),
            Next::Join {
                block: 0,
                branch: 0
            }
        );
        assert_eq!(
            g.after(3),
            Next::Join {
                block: 0,
                branch: 1
            }
        );
        assert_eq!(g.after(4), Next::Stage(5));
        assert_eq!(g.after(5), Next::Done);

        assert_eq!(g.feed_of(1), Feed::Stage(0));
        assert_eq!(g.feed_of(2), Feed::Stage(1));
        assert_eq!(g.feed_of(3), Feed::Stage(0));
        assert_eq!(g.feed_of(4), Feed::Merge(vec![2, 3]));
        assert_eq!(g.feed_of(5), Feed::Stage(4));

        assert_eq!(g.branch_of(0), None);
        assert_eq!(g.branch_of(1), Some((0, 0)));
        assert_eq!(g.branch_of(2), Some((0, 0)));
        assert_eq!(g.branch_of(3), Some((0, 1)));
        assert_eq!(g.branch_of(4), None);
    }

    #[test]
    fn graph_may_open_and_close_with_a_block() {
        // (a ‖ b) → merge : ids 0 | 1 | 2
        let g = StageGraph::builder().split(&[1, 1]).build();
        g.validate(3);
        assert_eq!(g.entry(), Next::FanOut { block: 0 });
        assert_eq!(g.feed_of(0), Feed::Source);
        assert_eq!(g.feed_of(1), Feed::Source);
        assert_eq!(g.after(2), Next::Done);
    }

    #[test]
    fn consecutive_blocks_chain_through_their_merges() {
        // (a ‖ b) → m0 → (c ‖ d) → m1 : ids 0 1 | 2 | 3 4 | 5
        let g = StageGraph::builder().split(&[1, 1]).split(&[1, 1]).build();
        g.validate(6);
        assert_eq!(g.blocks(), 2);
        assert_eq!(g.after(2), Next::FanOut { block: 1 });
        assert_eq!(g.feed_of(3), Feed::Stage(2));
        assert_eq!(g.merge_of(1), 5);
        assert_eq!(g.branch_of(4), Some((1, 1)));
    }

    #[test]
    fn feed_bytes_follow_graph_edges() {
        let g = sample();
        // input 100; out bytes per stage: 10, 20, 30, 40, 50, 60.
        let boundary = [100, 10, 20, 30, 40, 50, 60];
        assert_eq!(g.feed_bytes(0, &boundary), 100);
        assert_eq!(
            g.feed_bytes(1, &boundary),
            10,
            "branch entry gets pre-stage bytes"
        );
        assert_eq!(
            g.feed_bytes(3, &boundary),
            10,
            "each branch gets the same feed"
        );
        assert_eq!(
            g.feed_bytes(4, &boundary),
            40,
            "merge: largest branch output"
        );
        assert_eq!(g.feed_bytes(5, &boundary), 50);
    }

    #[test]
    #[should_panic(expected = "at least two branches")]
    fn single_branch_split_panics() {
        let _ = StageGraph::builder().split(&[2]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_branch_panics() {
        let _ = StageGraph::builder().split(&[1, 0]);
    }

    #[test]
    fn validate_rejects_wrong_stage_count() {
        let g = sample();
        let result = std::panic::catch_unwind(|| g.validate(7));
        assert!(result.is_err());
    }
}
