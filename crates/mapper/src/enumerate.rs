//! Candidate-mapping generators.
//!
//! Three families feed the optimisers in [`crate::search`]:
//! full assignment enumeration (small instances), compositions for
//! contiguous groupings, and neighbourhood moves for local search.

use crate::mapping::{Mapping, Placement};
use adapipe_gridsim::node::NodeId;

/// Number of unreplicated assignments of `ns` stages to `np` nodes
/// (`np^ns`), or `None` on overflow — used to gate exhaustive search.
pub fn assignment_count(ns: usize, np: usize) -> Option<u64> {
    let np = u64::try_from(np).ok()?;
    let mut acc: u64 = 1;
    for _ in 0..ns {
        acc = acc.checked_mul(np)?;
    }
    Some(acc)
}

/// Iterates every unreplicated assignment of `ns` stages to `np` nodes
/// in lexicographic order (odometer enumeration).
pub struct Assignments {
    np: usize,
    current: Vec<usize>,
    done: bool,
}

impl Assignments {
    /// Creates the iterator.
    ///
    /// # Panics
    /// Panics if `ns` or `np` is zero.
    pub fn new(ns: usize, np: usize) -> Self {
        assert!(ns > 0 && np > 0, "need at least one stage and one node");
        Assignments {
            np,
            current: vec![0; ns],
            done: false,
        }
    }
}

impl Iterator for Assignments {
    type Item = Mapping;

    fn next(&mut self) -> Option<Mapping> {
        if self.done {
            return None;
        }
        let mapping =
            Mapping::from_assignment(&self.current.iter().map(|&i| NodeId(i)).collect::<Vec<_>>());
        // Advance the odometer.
        let mut pos = self.current.len();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            self.current[pos] += 1;
            if self.current[pos] < self.np {
                break;
            }
            self.current[pos] = 0;
        }
        Some(mapping)
    }
}

/// All compositions of `n` into exactly `k` positive parts, e.g.
/// `compositions(3, 2) = [[1,2],[2,1]]`. Ordered lexicographically.
pub fn compositions(n: usize, k: usize) -> Vec<Vec<usize>> {
    assert!(k >= 1, "need at least one part");
    let mut out = Vec::new();
    if k > n {
        return out; // impossible with positive parts
    }
    let mut parts = vec![1usize; k];
    parts[k - 1] = n - (k - 1);
    loop {
        out.push(parts.clone());
        // Find the rightmost position (excluding the last) we can increment
        // while keeping all parts positive.
        let mut i = k.wrapping_sub(2);
        loop {
            if i == usize::MAX {
                return out;
            }
            // Incrementing parts[i] steals 1 from the tail budget.
            let tail_budget: usize = n - parts[..=i].iter().sum::<usize>();
            // After increment, remaining positions (i+1..k) need ≥ 1 each.
            if tail_budget >= k - i {
                parts[i] += 1;
                let consumed: usize = parts[..=i].iter().sum();
                for p in parts.iter_mut().take(k - 1).skip(i + 1) {
                    *p = 1;
                }
                let fixed: usize = consumed + (k - 2 - i);
                parts[k - 1] = n - fixed;
                break;
            }
            i = i.wrapping_sub(1);
        }
    }
}

/// Kinds of neighbourhood moves local search explores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Move {
    /// Re-host a (single-host) stage on a different node.
    MoveStage,
    /// Add one replica to a replicable stage. For keyed state this is
    /// a *shard rebalance*: the runtime re-derives shard ownership from
    /// the new host list and live-migrates the shards that moved.
    AddReplica,
    /// Drop one replica from a replicated stage.
    DropReplica,
}

/// Generates the one-move neighbourhood of `mapping` over `np` nodes.
///
/// * every single-host stage is re-hosted on every other node;
/// * every replicable stage gains one replica on every node not
///   already hosting it, while its width is below both `max_width` and
///   the stage's declared `replica_cap` (the shard count for keyed
///   state);
/// * every replicated stage drops each of its hosts in turn.
pub fn neighbours(
    mapping: &Mapping,
    np: usize,
    stateless: &[bool],
    replica_cap: &[usize],
    max_width: usize,
) -> Vec<(Move, Mapping)> {
    neighbours_touching(mapping, np, stateless, replica_cap, max_width, None)
}

/// Like [`neighbours`], but when `focus` is given, only generates moves
/// for stages hosted on one of the focus nodes. Local search uses this
/// with the *bottleneck* nodes: a move that does not unload the
/// bottleneck resource cannot raise throughput, so restricting the
/// neighbourhood this way loses (almost) nothing while shrinking the
/// per-step cost from `O(Ns·Np)` evaluations to `O(b·Np)` where `b` is
/// the number of bottleneck-hosted stages.
pub fn neighbours_touching(
    mapping: &Mapping,
    np: usize,
    stateless: &[bool],
    replica_cap: &[usize],
    max_width: usize,
    focus: Option<&[NodeId]>,
) -> Vec<(Move, Mapping)> {
    assert_eq!(stateless.len(), mapping.len(), "one flag per stage");
    assert_eq!(replica_cap.len(), mapping.len(), "one cap per stage");
    let mut out = Vec::new();
    #[allow(clippy::needless_range_loop)] // `s` indexes mapping, stateless, and moves alike
    for s in 0..mapping.len() {
        if let Some(focus) = focus {
            if !focus.iter().any(|&n| mapping.placement(s).contains(n)) {
                continue;
            }
        }
        let placement = mapping.placement(s);
        if placement.is_single() {
            let current = placement.primary();
            for node in (0..np).map(NodeId) {
                if node != current {
                    let mut next = mapping.clone();
                    *next.placement_mut(s) = Placement::single(node);
                    out.push((Move::MoveStage, next));
                }
            }
        }
        if stateless[s] && placement.width() < max_width.min(replica_cap[s]) {
            for node in (0..np).map(NodeId) {
                if !placement.contains(node) {
                    let mut next = mapping.clone();
                    next.placement_mut(s).add_host(node);
                    out.push((Move::AddReplica, next));
                }
            }
        }
        if placement.width() > 1 {
            for &host in placement.hosts() {
                let mut next = mapping.clone();
                next.placement_mut(s).remove_host(host);
                out.push((Move::DropReplica, next));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn assignment_count_gates_overflow() {
        assert_eq!(assignment_count(3, 3), Some(27));
        assert_eq!(assignment_count(1, 1), Some(1));
        assert_eq!(assignment_count(64, 64), None); // 64^64 overflows
    }

    #[test]
    fn assignments_enumerate_np_pow_ns() {
        let all: Vec<Mapping> = Assignments::new(3, 2).collect();
        assert_eq!(all.len(), 8);
        // First is all-on-n0, last is all-on-n1.
        assert_eq!(all[0].notation(), "(n0 n0 n0)");
        assert_eq!(all[7].notation(), "(n1 n1 n1)");
        // All distinct.
        let mut notations: Vec<String> = all.iter().map(Mapping::notation).collect();
        notations.sort();
        notations.dedup();
        assert_eq!(notations.len(), 8);
    }

    #[test]
    fn compositions_cover_all_positive_splits() {
        let c = compositions(4, 2);
        assert_eq!(c, vec![vec![1, 3], vec![2, 2], vec![3, 1]]);
        let c3 = compositions(5, 3);
        assert_eq!(c3.len(), 6); // C(4,2)
        assert!(c3.iter().all(|p| p.iter().sum::<usize>() == 5));
        assert!(c3.iter().all(|p| p.iter().all(|&x| x >= 1)));
    }

    #[test]
    fn compositions_edge_cases() {
        assert_eq!(compositions(3, 1), vec![vec![3]]);
        assert_eq!(compositions(2, 3), Vec::<Vec<usize>>::new());
        assert_eq!(compositions(3, 3), vec![vec![1, 1, 1]]);
    }

    #[test]
    fn neighbours_move_stages() {
        let m = Mapping::from_assignment(&[n(0), n(1)]);
        let nb = neighbours(&m, 3, &[false, false], &[usize::MAX; 2], 1);
        // Each stage can move to 2 other nodes; no replication allowed.
        assert_eq!(nb.len(), 4);
        assert!(nb.iter().all(|(mv, _)| *mv == Move::MoveStage));
    }

    #[test]
    fn neighbours_replicate_stateless_only() {
        let m = Mapping::from_assignment(&[n(0), n(1)]);
        let nb = neighbours(&m, 3, &[true, false], &[usize::MAX; 2], 2);
        let adds: Vec<_> = nb
            .iter()
            .filter(|(mv, _)| *mv == Move::AddReplica)
            .collect();
        // Only stage 0 may replicate, onto the two nodes not hosting it.
        assert_eq!(adds.len(), 2);
    }

    #[test]
    fn neighbours_drop_replicas() {
        let m = Mapping::new(vec![Placement::replicated(vec![n(0), n(1)])]);
        let nb = neighbours(&m, 2, &[true], &[usize::MAX], 2);
        let drops: Vec<_> = nb
            .iter()
            .filter(|(mv, _)| *mv == Move::DropReplica)
            .collect();
        assert_eq!(drops.len(), 2);
        for (_, dm) in drops {
            assert!(dm.placement(0).is_single());
        }
    }

    #[test]
    fn max_width_caps_replication() {
        let m = Mapping::new(vec![Placement::replicated(vec![n(0), n(1)])]);
        let nb = neighbours(&m, 4, &[true], &[usize::MAX], 2);
        assert!(nb.iter().all(|(mv, _)| *mv != Move::AddReplica));
    }

    #[test]
    fn declared_replica_cap_caps_replication() {
        // Global max_width would allow widening, but the stage's
        // declared bound of 1 forbids it.
        let m = Mapping::from_assignment(&[n(0)]);
        let nb = neighbours(&m, 4, &[true], &[1], 4);
        assert!(nb.iter().all(|(mv, _)| *mv != Move::AddReplica));
        // A cap of 2 admits replicas up to width 2 and no further.
        let nb = neighbours(&m, 4, &[true], &[2], 4);
        assert!(nb.iter().any(|(mv, _)| *mv == Move::AddReplica));
        let wide = Mapping::new(vec![Placement::replicated(vec![n(0), n(1)])]);
        let nb = neighbours(&wide, 4, &[true], &[2], 4);
        assert!(nb.iter().all(|(mv, _)| *mv != Move::AddReplica));
    }
}
