//! The signal-processing workload on the 32-node simulated grid:
//! static vs reactive vs adaptive vs oracle under Markov on/off load —
//! one program, parameterised by policy, on the unified API.
//!
//! Run with: `cargo run --release --example signal_grid`

use adapipe::prelude::*;
use adapipe::workloads::signal::signal_pipeline;

fn main() {
    let grid = testbed_grid32(11);
    // The signal pipeline's cost shape is what the planner sees; the
    // simulation backend consumes exactly that metadata.
    let spec_profile = signal_pipeline(4096).spec().profile();
    println!(
        "== signal pipeline ({} stages, work {:?}) on grid32 ==\n",
        spec_profile.stages(),
        spec_profile
            .stage_work
            .iter()
            .map(|w| (w * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
    );

    let interval = SimDuration::from_secs(10);
    let policies = [
        Policy::Static,
        Policy::Reactive {
            interval,
            degradation: 0.75,
        },
        Policy::Periodic { interval },
        Policy::Oracle { interval },
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>8}",
        "policy", "makespan(s)", "tput(it/s)", "latency(s)", "remaps"
    );
    for policy in policies {
        // The same program each time — only the policy differs. The
        // builder re-wraps the real signal stages; on the simulation
        // backend only their declared costs execute.
        let report = PipelineBuilder::from_pipeline(signal_pipeline(4096))
            .policy(policy)
            .build()
            .expect("a valid pipeline")
            .run(
                Backend::Sim(&grid),
                RunConfig {
                    items: 2_000,
                    ..RunConfig::default()
                },
            )
            .expect("a compatible backend")
            .report;
        println!(
            "{:<10} {:>12.1} {:>12.2} {:>12.3} {:>8}",
            policy.name(),
            report.makespan.as_secs_f64(),
            report.mean_throughput(),
            report.mean_latency.as_secs_f64(),
            report.adaptation_count(),
        );
    }

    println!("\nExpected shape: oracle ≥ adaptive ≥ reactive ≥ static in");
    println!("throughput; reactive plans less often than adaptive.");
}
