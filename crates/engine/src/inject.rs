//! Real CPU load injection.
//!
//! The schedule-based slowdown in [`crate::vnode`] is deterministic and
//! is what experiments use. For demonstrations that want *genuine*
//! resource contention (example `loaded_host`), this module burns CPU on
//! real threads with a configurable duty cycle, reproducing the
//! "another grid user's job arrives" scenario physically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A handle to running background load; dropping it stops the burners.
pub struct LoadInjector {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl LoadInjector {
    /// Starts `threads` burner threads, each consuming `duty` of one core
    /// (`duty = 0.7` → 70 % busy, 30 % idle per 10 ms quantum).
    ///
    /// # Panics
    /// Panics if `duty` is outside `[0, 1]` or `threads` is zero.
    pub fn start(threads: usize, duty: f64) -> Self {
        assert!(threads > 0, "need at least one burner thread");
        assert!((0.0..=1.0).contains(&duty), "duty must be in [0,1]");
        let stop = Arc::new(AtomicBool::new(false));
        let quantum = Duration::from_millis(10);
        let busy = quantum.mul_f64(duty);
        let handles = (0..threads)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let start = Instant::now();
                        while start.elapsed() < busy {
                            std::hint::spin_loop();
                        }
                        let rest = quantum.saturating_sub(start.elapsed());
                        if !rest.is_zero() {
                            std::thread::sleep(rest);
                        }
                    }
                })
            })
            .collect();
        LoadInjector {
            stop,
            threads: handles,
        }
    }

    /// Stops all burner threads and waits for them.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Number of burner threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }
}

impl Drop for LoadInjector {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_starts_and_stops() {
        let inj = LoadInjector::start(2, 0.5);
        assert_eq!(inj.thread_count(), 2);
        std::thread::sleep(Duration::from_millis(30));
        inj.stop(); // must not hang
    }

    #[test]
    fn drop_stops_burners() {
        {
            let _inj = LoadInjector::start(1, 0.9);
            std::thread::sleep(Duration::from_millis(20));
        } // drop here must join cleanly
    }

    #[test]
    fn zero_duty_is_pure_sleep() {
        let inj = LoadInjector::start(1, 0.0);
        std::thread::sleep(Duration::from_millis(20));
        inj.stop();
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn bad_duty_panics() {
        let _ = LoadInjector::start(1, 1.5);
    }
}
