//! The grand tour: one scenario exercising every subsystem together —
//! domain workload cost shape, heterogeneous grid, background load,
//! fault injection, adaptive control with all stability mechanisms, and
//! report plumbing (timeline, latencies, stage metrics, events) — all
//! through the unified `Pipeline` API.

use adapipe::prelude::*;

/// The tour's pipeline spec: the imaging pipeline's cost shape,
/// jittered per item, with a stateful final stage carrying 8 MB of
/// state.
fn tour_spec(seed: u64) -> PipelineSpec {
    let imaging_profile = imaging_pipeline(96).spec().profile();
    let mut stages: Vec<StageSpec> = imaging_profile
        .stage_work
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            StageSpec::balanced(format!("img{i}"), w, imaging_profile.boundary_bytes[i + 1])
                .with_work(Box::new(UniformWork::new(w, 0.25, seed + i as u64)))
        })
        .collect();
    let last = stages.len() - 1;
    stages[last] = StageSpec::balanced("collect", 0.1, 8).with_state(8 << 20);
    let mut spec = PipelineSpec::new(stages);
    spec.input_bytes = imaging_profile.boundary_bytes[0];
    spec
}

#[test]
fn everything_at_once() {
    // Grid: hetero8 with one extra slowdown and one crash on top of its
    // built-in random-walk load.
    let seed = 1234;
    let mut grid = testbed_hetero8(seed);
    FaultPlan::new()
        .slowdown(
            NodeId(2),
            SimTime::from_secs_f64(80.0),
            SimTime::from_secs_f64(400.0),
            0.2,
        )
        .crash(NodeId(4), SimTime::from_secs_f64(150.0))
        .apply(&mut grid);

    let items = 800u64;
    let arrivals = ArrivalProcess::Poisson { rate: 2.0, seed };
    let cfg = || RunConfig {
        items,
        observation_noise: 0.05,
        noise_seed: seed,
        ..RunConfig::default()
    };

    // The adaptive run, through the unified API.
    let run_adaptive = || {
        PipelineBuilder::from_spec(tour_spec(seed))
            .policy(Policy::periodic_default())
            .arrivals(arrivals)
            .build()
            .expect("tour pipeline builds")
            .run(Backend::Sim(&grid), cfg())
            .expect("sim run")
            .report
    };
    let adaptive_r = run_adaptive();

    // The static baseline pairs Policy::Static with a Poisson stream —
    // a combination the unified builder rejects unless the scenario
    // *acknowledges* it as a deliberate baseline. This is exactly such
    // a baseline, so: rejected plain, accepted with as_baseline().
    assert!(matches!(
        PipelineBuilder::from_spec(tour_spec(seed))
            .policy(Policy::Static)
            .arrivals(arrivals)
            .build()
            .unwrap_err(),
        BuildError::PolicyArrivalsMismatch { .. }
    ));
    let static_r = PipelineBuilder::from_spec(tour_spec(seed))
        .policy(Policy::Static)
        .arrivals(arrivals)
        .as_baseline()
        .build()
        .expect("acknowledged baseline builds")
        .run(Backend::Sim(&grid), cfg())
        .expect("sim run")
        .report;

    // Adaptive must complete everything despite the crash; static may
    // strand items on the dead node (if it mapped anything there).
    assert_eq!(adaptive_r.completed, items);
    assert!(!adaptive_r.truncated);
    assert!(
        adaptive_r.adaptation_count() >= 1,
        "faults must trigger adaptation"
    );

    // If static also completed (planner may have avoided n4 at launch),
    // adaptive must not be meaningfully slower; if static stranded
    // items, adaptation already proved its point.
    if !static_r.truncated {
        assert!(
            adaptive_r.makespan.as_secs_f64() <= static_r.makespan.as_secs_f64() * 1.10,
            "adaptive {} vs static {}",
            adaptive_r.makespan,
            static_r.makespan
        );
    }

    // Report plumbing end-to-end.
    assert_eq!(adaptive_r.timeline.total(), items);
    assert_eq!(adaptive_r.latencies.len(), items as usize);
    let p50 = adaptive_r
        .latency_percentile(0.5)
        .expect("latencies recorded");
    let p99 = adaptive_r
        .latency_percentile(0.99)
        .expect("latencies recorded");
    assert!(p50 <= p99);
    assert!(adaptive_r.mean_latency > SimDuration::ZERO);
    assert!(adaptive_r.planning_cycles > 0);
    // Every stage processed every item exactly once (stage metrics count
    // tasks, which can exceed items only via... nothing: no retries).
    for s in 0..adaptive_r.stage_metrics.len() {
        assert_eq!(
            adaptive_r.stage_metrics.stage(s).count(),
            items,
            "stage {s} task count"
        );
    }
    // The final mapping avoids the crashed node.
    assert!(
        !adaptive_r.final_mapping.nodes_used().contains(&NodeId(4)),
        "crashed node still mapped: {}",
        adaptive_r.final_mapping
    );
    // Determinism of the whole tour, through the unified API.
    let again = run_adaptive();
    assert_eq!(again.makespan, adaptive_r.makespan);
    assert_eq!(again.adaptation_count(), adaptive_r.adaptation_count());
}
