//! Named workload scenarios shared by examples, tests and benches.
//!
//! Each scenario pins a pipeline shape (stage count, cost skew, data
//! sizes) so that every experiment in `EXPERIMENTS.md` names its workload
//! unambiguously.

use adapipe_core::pipeline::{Pipeline, PipelineBuilder};
use adapipe_core::spec::{PipelineSpec, StageSpec, UniformWork};
use adapipe_engine::vnode::spin_for;
use std::time::Duration;

/// How stage costs are distributed along the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostShape {
    /// All stages cost the same.
    Balanced,
    /// One stage (the middle one) costs `skew ×` the others.
    MiddleHeavy,
    /// Costs increase linearly from first to last stage.
    Ramp,
}

/// Builds a synthetic [`PipelineSpec`] for the simulator.
///
/// * `ns` — stage count;
/// * `shape` — cost distribution (total work ≈ `ns × base_work` for all
///   shapes, so results are comparable across shapes);
/// * `base_work` — per-stage work units for the balanced shape;
/// * `bytes` — item size on every boundary;
/// * `jitter` — per-item uniform work spread (0 = deterministic).
pub fn synthetic_spec(
    ns: usize,
    shape: CostShape,
    base_work: f64,
    bytes: u64,
    jitter: f64,
    seed: u64,
) -> PipelineSpec {
    assert!(ns > 0, "need at least one stage");
    assert!(base_work > 0.0, "work must be positive");
    let weights: Vec<f64> = match shape {
        CostShape::Balanced => vec![1.0; ns],
        CostShape::MiddleHeavy => {
            // Middle stage gets 4×; renormalise to keep total = ns.
            let mut w = vec![1.0; ns];
            w[ns / 2] = 4.0;
            let total: f64 = w.iter().sum();
            w.iter().map(|x| x * ns as f64 / total).collect()
        }
        CostShape::Ramp => {
            // 1, 2, …, ns renormalised to total ns.
            let total: f64 = (1..=ns).sum::<usize>() as f64;
            (1..=ns).map(|i| i as f64 * ns as f64 / total).collect()
        }
    };
    let stages = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let mean = base_work * w;
            let mut s = StageSpec::balanced(format!("s{i}"), mean, bytes);
            if jitter > 0.0 {
                s = s.with_work(Box::new(UniformWork::new(
                    mean,
                    jitter,
                    seed.wrapping_add(i as u64),
                )));
            }
            s
        })
        .collect();
    let mut spec = PipelineSpec::new(stages);
    spec.input_bytes = bytes;
    spec
}

/// The item type synthetic *threaded* pipelines process: carries its own
/// per-stage spin durations so replicas need no shared counters.
#[derive(Clone, Debug)]
pub struct SynthItem {
    /// Item index in the stream.
    pub seq: u64,
    /// Spin duration per stage, seconds.
    pub spin_secs: Vec<f64>,
}

/// Generates `n` synthetic items whose per-stage spins mirror `spec`'s
/// work draws scaled by `unit_secs` (wall seconds per work unit).
pub fn synth_items(spec: &PipelineSpec, n: u64, unit_secs: f64) -> Vec<SynthItem> {
    assert!(unit_secs > 0.0, "unit time must be positive");
    (0..n)
        .map(|seq| SynthItem {
            seq,
            spin_secs: (0..spec.len())
                .map(|s| spec.draw_work(s, seq) * unit_secs)
                .collect(),
        })
        .collect()
}

/// Builds a threaded [`Pipeline`] that burns each item's per-stage spin
/// duration — the wall-clock twin of a simulated synthetic workload.
pub fn synth_pipeline(spec: &PipelineSpec) -> Pipeline<SynthItem, SynthItem> {
    let ns = spec.len();
    let mut builder = PipelineBuilder::<SynthItem>::new().input_bytes(spec.input_bytes);
    for s in 0..ns {
        let stage_spec = StageSpec::balanced(
            spec.stages[s].name.clone(),
            spec.stages[s].work.mean(),
            spec.stages[s].out_bytes,
        );
        builder = builder.stage(stage_spec, move |item: SynthItem| {
            spin_for(Duration::from_secs_f64(item.spin_secs[s]));
            item
        });
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_shape_is_uniform() {
        let spec = synthetic_spec(4, CostShape::Balanced, 2.0, 100, 0.0, 0);
        let profile = spec.profile();
        assert_eq!(profile.stage_work, vec![2.0; 4]);
        assert_eq!(spec.total_mean_work(), 8.0);
    }

    #[test]
    fn middle_heavy_keeps_total_work() {
        let spec = synthetic_spec(5, CostShape::MiddleHeavy, 1.0, 0, 0.0, 0);
        let total = spec.total_mean_work();
        assert!((total - 5.0).abs() < 1e-9, "total={total}");
        let works = spec.profile().stage_work;
        let max = works.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(works[2], max, "middle stage must be heaviest");
        assert!(works[2] / works[0] > 3.9);
    }

    #[test]
    fn ramp_increases_monotonically() {
        let spec = synthetic_spec(4, CostShape::Ramp, 1.0, 0, 0.0, 0);
        let works = spec.profile().stage_work;
        assert!(works.windows(2).all(|w| w[0] < w[1]));
        assert!((spec.total_mean_work() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn jittered_spec_draws_vary_per_item() {
        let spec = synthetic_spec(2, CostShape::Balanced, 1.0, 0, 0.3, 42);
        let a = spec.draw_work(0, 1);
        let b = spec.draw_work(0, 2);
        assert_ne!(a, b);
        assert!((0.7..=1.3).contains(&a));
    }

    #[test]
    fn synth_items_mirror_spec_draws() {
        let spec = synthetic_spec(3, CostShape::Ramp, 1.0, 0, 0.2, 7);
        let items = synth_items(&spec, 10, 0.001);
        assert_eq!(items.len(), 10);
        for item in &items {
            assert_eq!(item.spin_secs.len(), 3);
            for (s, &spin) in item.spin_secs.iter().enumerate() {
                let expect = spec.draw_work(s, item.seq) * 0.001;
                assert!((spin - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn synth_pipeline_burns_and_passes_items() {
        let spec = synthetic_spec(2, CostShape::Balanced, 1.0, 0, 0.0, 0);
        let p = synth_pipeline(&spec);
        assert_eq!(p.len(), 2);
        let (_, mut stages) = p.into_parts();
        let item = SynthItem {
            seq: 0,
            spin_secs: vec![0.001, 0.001],
        };
        let t0 = std::time::Instant::now();
        let mut boxed: adapipe_core::stage::BoxedItem = adapipe_core::payload::Payload::new(item);
        for s in &mut stages {
            boxed = s.process(boxed).expect("stages are type-aligned");
        }
        assert!(t0.elapsed() >= Duration::from_millis(2));
        let out = boxed.downcast::<SynthItem>().unwrap();
        assert_eq!(out.seq, 0);
    }
}
