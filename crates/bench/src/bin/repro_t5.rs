//! Table 5 — how wrong is the analytic model when links contend?
//!
//! The bottleneck model treats every directed link as an independent
//! resource and ignores queueing between transfers sharing a link. The
//! simulator can enforce per-link serialisation. This table sweeps item
//! size on a WAN-linked pipeline and reports the model's throughput
//! error against contention-enabled simulation — quantifying when the
//! "communication is overlapped" assumption starts to mislead the
//! planner (and motivating the regret guard as the backstop).

use adapipe_bench::{banner, Table};
use adapipe_core::prelude::*;
use adapipe_core::simengine::run as sim_run;
use adapipe_gridsim::prelude::*;
use adapipe_mapper::prelude::*;

fn main() {
    banner(
        "T5",
        "analytic-model error vs link contention (item-size sweep, slow WAN)",
        "while compute dominates, both sims match the model; once transfers \
         dominate, the model tracks the *contended* sim (it prices links as \
         serial resources) and is pessimistic for the uncontended one",
    );

    // 3 stages spread over 3 nodes joined by WAN links (12.5 MB/s).
    let nodes = (0..3)
        .map(|i| Node::new(NodeSpec::new(format!("n{i}"), 1.0, 1), LoadModel::free()))
        .collect();
    let grid = GridSpec::new(nodes, Topology::uniform(3, LinkSpec::slow_wan()));
    let mapping = Mapping::from_assignment(&[NodeId(0), NodeId(1), NodeId(2)]);
    let items = 300u64;

    let mut table = Table::new(&[
        "item KB",
        "model tput",
        "sim tput (no cont.)",
        "sim tput (contention)",
        "err no-cont %",
        "err cont %",
    ]);
    for kb in [16u64, 64, 256, 1024, 4096] {
        let spec = PipelineSpec::balanced(3, 1.0, kb << 10);
        let profile = spec.profile();
        let rates = grid.rates_at(SimTime::ZERO);
        let pred = evaluate(&profile, &mapping, &rates, grid.topology());
        let sim = |contention: bool| {
            sim_run(
                &grid,
                &spec,
                &SimConfig {
                    items,
                    initial_mapping: Some(mapping.clone()),
                    link_contention: contention,
                    ..SimConfig::default()
                },
            )
            .mean_throughput()
        };
        let free = sim(false);
        let contended = sim(true);
        let err = |measured: f64| (pred.throughput - measured) / measured * 100.0;
        table.row(vec![
            kb.to_string(),
            format!("{:.3}", pred.throughput),
            format!("{free:.3}"),
            format!("{contended:.3}"),
            format!("{:+.1}", err(free)),
            format!("{:+.1}", err(contended)),
        ]);
    }
    table.print();
    println!("err = (model − simulated) / simulated; positive = model optimistic");
}
