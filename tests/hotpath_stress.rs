//! Seeded stress of the batched, work-stealing threaded hot path under
//! adaptation chaos: a replicated stateless pipeline pushed in bursts
//! through a live session while a fault plan takes a node down and back
//! up, periodic re-planning and explicit `force_remap` calls publish new
//! routing epochs mid-stream, and idle replicas steal from loaded
//! siblings. The run must stay exactly-once — no lost items, no
//! duplicates, outputs in push order — and (via the engine's
//! debug assertions, active in this build) no envelope may ever be
//! processed against a retired routing epoch on a host that no longer
//! serves its stage.

use adapipe::prelude::*;
use std::time::Duration;

fn n(i: usize) -> NodeId {
    NodeId(i)
}

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

const STAGE_SECS: f64 = 0.002;
const ITEMS: u64 = 300;

/// Small deterministic LCG (Numerical Recipes constants) driving the
/// push/pull/control interleaving so every run replays the same chaos.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Two replicated stateless spinning stages: enough per-item work for
/// queues to build (so idle replicas steal) and for the wall-clock
/// fault schedule to land mid-stream.
fn stress_pipeline() -> Pipeline<u64, u64> {
    Pipeline::<u64>::builder()
        .stage_with(StageSpec::balanced("a", STAGE_SECS, 8), |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x + 1
        })
        .stage_with(StageSpec::balanced("b", STAGE_SECS, 8), |x: u64| {
            spin_for(Duration::from_secs_f64(STAGE_SECS));
            x * 3
        })
        .policy(Policy::Periodic {
            interval: SimDuration::from_millis(60),
        })
        // Node 1 drops out at 0.15 s and returns at 0.45 s; stranded
        // envelopes replay, and the periodic controller re-maps away
        // from (then possibly back onto) it while the stream is live.
        .faults(FaultPlan::new().outage(n(1), secs(0.15), secs(0.45)))
        .feed(|i| i)
        .build()
        .expect("stress pipeline builds")
}

fn stress_vnodes() -> Vec<VNodeSpec> {
    // One deliberately slow replica host so round-robin dealing
    // overloads it and its siblings have something to steal.
    vec![
        VNodeSpec::free("v0"),
        VNodeSpec::with_speed("v1", 0.5),
        VNodeSpec::free("v2"),
        VNodeSpec::free("v3"),
    ]
}

/// The chaos run: seeded bursts of batched pushes interleaved with
/// pulls and forced re-maps, over the outage schedule above.
#[test]
fn remap_node_churn_and_stealing_stay_exactly_once() {
    let cfg = RunConfig {
        items: ITEMS,
        initial_mapping: Some(Mapping::new(vec![
            Placement::replicated(vec![n(0), n(1)]),
            Placement::replicated(vec![n(2), n(3)]),
        ])),
        // Batched envelopes on the wire, a bounded credit gate, and
        // order-preserving delivery — the full hot-path configuration.
        batch_size: 8,
        queue_capacity: Some(64),
        ..RunConfig::default()
    };
    let mut session = stress_pipeline()
        .spawn(Backend::Threads(stress_vnodes()), cfg)
        .expect("spawn threads session");

    let mut rng = Lcg(0x5eed_cafe_f00d);
    let mut outputs: Vec<u64> = Vec::with_capacity(ITEMS as usize);
    let mut pushed = 0u64;
    let mut remaps_forced = 0;
    while pushed < ITEMS {
        // Bursts of 1..=12 pushes: short bursts ride the pending
        // buffer, long ones flush whole envelopes mid-loop.
        let burst = 1 + rng.next() % 12;
        let batch: Vec<u64> = (0..burst.min(ITEMS - pushed)).map(|k| pushed + k).collect();
        pushed += batch.len() as u64;
        session.push_batch(batch).unwrap();
        // Occasionally force a re-plan so fresh routing epochs are
        // published while envelopes from older epochs are in flight.
        if rng.next().is_multiple_of(7) {
            session.force_remap();
            remaps_forced += 1;
        }
        // Pull opportunistically so the credit gate keeps cycling.
        if !rng.next().is_multiple_of(3) {
            while let TryNext::Item(o) = session.try_next() {
                outputs.push(o);
            }
        }
    }
    assert!(remaps_forced > 0, "seed never forced a remap");

    let handle = session.drain();
    outputs.extend(handle.outputs);
    assert!(
        handle.error.is_none(),
        "chaos run errored: {:?}",
        handle.error
    );

    // Exactly-once, in push order: every item observed once, no
    // duplicates, no losses, resequenced despite replay and stealing.
    let expected: Vec<u64> = (0..ITEMS).map(|i| (i + 1) * 3).collect();
    assert_eq!(outputs, expected, "lost, duplicated, or reordered items");
    assert_eq!(handle.report.completed, ITEMS);
    assert!(!handle.report.truncated, "report claims truncation");
}
