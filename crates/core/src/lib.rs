//! # adapipe-core
//!
//! The adaptive parallel pipeline skeleton — the primary contribution of
//! *An Adaptive Parallel Pipeline Pattern for Grids* (Gonzalez-Velez &
//! Cole, IPDPS 2008), reconstructed in Rust.
//!
//! The programmer describes a pipeline ([`pipeline::PipelineBuilder`])
//! with per-stage cost metadata ([`spec`]); the skeleton owns everything
//! else:
//!
//! * **instrumentation** of availability and service times,
//! * **forecasting** via `adapipe-monitor`,
//! * **planning** via `adapipe-mapper`,
//! * **adaptation** — re-mapping stages across grid nodes at run time
//!   under a [`policy::Policy`], with hysteresis and migration-cost
//!   accounting in the [`controller`].
//!
//! Two engines execute a pipeline:
//!
//! * [`simengine`] — deterministic discrete-event execution on
//!   `adapipe-gridsim` (the evaluation substrate);
//! * the threaded engine in `adapipe-engine` — real OS threads and
//!   channels with synthetic heterogeneity on one machine.
//!
//! ## Controller stability design (summary)
//!
//! The controller combines four mechanisms, each added in response to a
//! measured failure mode (ablation A2, `adaptation_stability` tests):
//! sub-interval **windowed sensing** (point samples alias against
//! oscillating load), a short **warm-up** (a cold forecaster
//! extrapolates wildly from one sample), optional **verdict
//! confirmation** (off by default — its lag costs more than the
//! flapping it prevents unless migrations are very expensive), and a
//! **regret guard** that reverts any re-mapping whose *measured*
//! throughput stays far below its prediction. Forecasts can be fooled;
//! measurements cannot.
//!
//! ## Quick example (simulated, backend-level)
//!
//! Applications should prefer the unified `adapipe::api::Pipeline`
//! builder in the facade crate; this is the backend-level entry point
//! it delegates to.
//!
//! ```
//! use adapipe_core::prelude::*;
//! use adapipe_core::simengine;
//! use adapipe_gridsim::prelude::*;
//!
//! let grid = testbed_small3();
//! let spec = PipelineSpec::balanced(3, 1.0, 0);
//! let report = simengine::run(&grid, &spec, &SimConfig {
//!     items: 50,
//!     ..SimConfig::default()
//! });
//! assert_eq!(report.completed, 50);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod farm;
pub mod payload;
pub mod pipeline;
pub mod simengine;
pub mod spec;
pub mod stage;

// The adaptation machinery (controller, policies, reports, metrics)
// moved to `adapipe-runtime`, the backend-agnostic runtime layer; the
// historical `adapipe_core::*` paths remain valid through these
// re-exports.
pub use adapipe_runtime::{controller, metrics, policy, report};

/// Convenient glob-import surface.
///
/// The legacy typed builder (`pipeline::Pipeline` /
/// `pipeline::PipelineBuilder`) is deliberately *not* re-exported here:
/// the facade crate's `adapipe::api` module exports a unified `Pipeline`
/// under the same names, and both preludes are glob-merged there.
/// Backends and tests that need the engine-level builder import it from
/// [`crate::pipeline`] directly.
pub mod prelude {
    pub use crate::controller::{Controller, ControllerConfig};
    pub use crate::farm::{farm, farm_spec};
    pub use crate::metrics::{StageMetrics, StageStats};
    pub use crate::payload::Payload;
    pub use crate::policy::Policy;
    pub use crate::report::{AdaptationEvent, DeadLetter, RunReport};
    pub use crate::simengine::{ArrivalProcess, ItemFate, SimConfig};
    pub use crate::spec::{
        ConstantWork, PipelineSpec, ResiliencePolicy, StageGraph, StageGraphBuilder, StageSpec,
        UniformWork, WorkModel,
    };
    pub use crate::stage::{
        clone_fn, fan_out_fn, BoxedItem, CloneFn, DynStage, FallibleFnStage, FanOutFn, FnStage,
        MergeStage, SealedStage, StageError, StatefulFnStage,
    };
    pub use adapipe_runtime::adapt::{AdaptationLoop, RuntimeConfig};
    pub use adapipe_runtime::backend::{ExecutionBackend, RemapPlan};
    pub use adapipe_runtime::routing::{RoutingTable, Selection};
    pub use adapipe_runtime::session::{BuildError, RunConfig, RunHooks};
    pub use adapipe_state::{StateAccess, StateCodec, StateSnapshot};
}

pub use prelude::*;
