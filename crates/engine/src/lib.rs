//! # adapipe-engine
//!
//! The threaded execution engine for the adaptive parallel pipeline:
//! real OS threads and channels on one machine, with the grid's
//! heterogeneity reproduced synthetically.
//!
//! * [`vnode`] — virtual nodes: per-worker speed factors and wall-clock
//!   background-load schedules (the calibration band's "synthetic
//!   heterogeneity on one box");
//! * [`exec`] — the engine proper: one worker thread per vnode, shared
//!   routing table, live re-mapping with stateful-instance hand-off, an
//!   order-preserving collector, and the same monitoring/planning
//!   controller the simulator uses; the worker pool ([`exec::Pool`])
//!   serves any number of concurrent tenant sessions under
//!   weighted-fair envelope admission;
//! * [`inject`] — optional *real* CPU burners for demonstrations of
//!   genuine contention.
//!
//! The engine accepts the same [`adapipe_core::pipeline::Pipeline`] the
//! simulator plans over, so an application written once runs under both.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exec;
pub mod inject;
pub mod vnode;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::exec::{
        attach, execute, execute_fed, spawn, EngineConfig, EngineOutcome, EngineSession, Pool,
        TenantHandle,
    };
    pub use crate::inject::LoadInjector;
    pub use crate::vnode::{calibrate_host, spin_for, VNodeSpec, MIN_WALL_AVAILABILITY};
}

pub use prelude::*;
