//! # adapipe-workloads
//!
//! Workload generators and domain kernels for the adaptive-pipeline
//! evaluation:
//!
//! * [`cost`] — per-item work distributions (exponential, Pareto,
//!   bimodal) implementing [`adapipe_core::spec::WorkModel`];
//! * [`imaging`] — a real image-processing pipeline (3×3 convolution,
//!   Sobel, quantisation) over deterministic synthetic frames;
//! * [`signal`] — a real FIR filter-chain pipeline over synthetic sample
//!   frames;
//! * [`scenario`] — the named synthetic pipeline shapes the experiments
//!   reference (balanced / middle-heavy / ramp cost shapes), plus the
//!   spin-based threaded twin of any simulated spec.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod imaging;
pub mod scenario;
pub mod signal;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::cost::{BimodalWork, ExponentialWork, ParetoWork};
    pub use crate::imaging::{blur, convolve3x3, imaging_pipeline, quantise, sobel, Image};
    pub use crate::scenario::{synth_items, synth_pipeline, synthetic_spec, CostShape, SynthItem};
    pub use crate::signal::{fir, lowpass_taps, signal_pipeline, Frame};
}

pub use prelude::*;
